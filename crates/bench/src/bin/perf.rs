//! Quick-profile harness: times the simulator's hot paths end to end and
//! emits one JSON record per scenario.
//!
//! Unlike the criterion suites (statistical, slow), this binary is meant for
//! before/after comparisons across PRs: it runs each scenario under a small
//! wall-clock budget and prints `{"scenarios": {name: {mean_seconds,
//! iters}}}` to stdout (or `--out FILE`). `BENCH_*.json` records in the
//! repository root are produced by running it on both sides of a change and
//! merging the two outputs (see README "Performance").
//!
//! Usage: `cargo run --release -p redistrib-bench --bin perf [-- --out FILE]
//! [--budget SECONDS] [--only SUBSTRING]`
//!
//! `--only` keeps just the scenarios whose name contains the substring —
//! for re-measuring one noisy scenario with many more samples without
//! paying for the whole sweep.

use std::fmt::Write as _;
use std::time::Instant;

use redistrib_bench::{paper_workload, platform_with_mtbf};
use redistrib_core::{run, EngineConfig, Heuristic};
use redistrib_experiments::online::campaign_strategies;
use redistrib_experiments::runner::{run_point, PointConfig, Variant};
use redistrib_experiments::workload::WorkloadParams;
use redistrib_experiments::{run_online_point, OnlinePointConfig};
use redistrib_model::{JobSpec, PaperModel, TaskSpec, TimeCalc};
use redistrib_online::{
    generate_jobs, BurstyArrivals, JobSizeModel, OnlineConfig, OnlineStrategy, PackStaging,
    Scheduler,
};
use redistrib_service::{
    client, serve_router, step_quantum, BackendSpec, InProcessLauncher, Json, RouterConfig,
    SessionStore, SnapshotArchive, SpeedupSpec, StoreConfig, SupervisorConfig,
};

/// Times `f` under a wall-clock budget: one warm-up call, then iterations
/// until the budget elapses (at least one), returning `(mean_secs, iters)`.
fn time_budgeted<F: FnMut()>(budget_secs: f64, mut f: F) -> (f64, u64) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if start.elapsed().as_secs_f64() >= budget_secs {
            break;
        }
    }
    (start.elapsed().as_secs_f64() / iters as f64, iters)
}

/// A unique scratch directory for archive-enabled bench runs.
fn bench_archive_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("redistrib-bench-archive-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench archive dir");
    dir
}

/// The service load scenario: `sessions` concurrent sessions (4 jobs each
/// on p = 8) registered in one `SessionStore`, drained by `workers`
/// threads that shard the registry and advance each live session at most
/// `quantum` events per visit — the batched-stepping loop of the session
/// host. The store runs with the disk archive *enabled* (as a durable
/// production host would) but no idle TTL, so checkpoint-on-evict stays
/// off the stepping hot path. Returns the number of sessions completed.
fn service_load(sessions: usize, workers: usize, quantum: u64) -> usize {
    let dir = bench_archive_dir();
    let (store, _report) = SessionStore::with_config(StoreConfig {
        archive: Some(SnapshotArchive::open(&dir).expect("bench archive opens")),
        idle_ttl: None,
        max_sessions: None,
    })
    .expect("store builds");
    let platform = platform_with_mtbf(8, 100.0);
    let scheduler = Scheduler::on(platform)
        .speedup(std::sync::Arc::new(PaperModel::default()))
        .strategy(OnlineStrategy::resizing(Heuristic::IteratedGreedyEndLocal));
    for s in 0..sessions {
        // Deterministic per-session variety: sizes and staggered releases
        // differ across sessions, fault streams are per-session seeded.
        let jobs: Vec<JobSpec> = (0..4)
            .map(|j| JobSpec {
                task: TaskSpec {
                    size: 3_000.0 + 50.0 * ((s * 7 + j * 131) % 64) as f64,
                    ckpt_unit: 1.0,
                },
                release: 150.0 * j as f64,
            })
            .collect();
        let session = scheduler
            .clone()
            .faults(s as u64, platform.proc_mtbf)
            .session(&jobs)
            .expect("session builds");
        store.insert(session, SpeedupSpec::Paper);
    }
    let handles = store.handles();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shard: Vec<_> =
                handles.iter().skip(w).map(|(_, entry)| entry).step_by(workers).collect();
            scope.spawn(move || {
                let mut live = shard;
                while !live.is_empty() {
                    live.retain(|entry| {
                        let (_, done) = step_quantum(entry, quantum).expect("step succeeds");
                        !done
                    });
                }
            });
        }
    });
    let drained = store
        .handles()
        .iter()
        .filter(|(_, e)| e.lock().expect("no handler panicked").session.is_done())
        .count();
    assert_eq!(drained, sessions, "every session must drain");
    let _ = std::fs::remove_dir_all(&dir);
    drained
}

/// The durability scenario: checkpoint `sessions` mid-run sessions to
/// the disk archive, then recover a fresh store from the same directory
/// (startup scan + resume validation) — the crash/restart path end to
/// end. Returns the number of sessions recovered.
fn service_checkpoint_recover(sessions: usize) -> usize {
    let dir = bench_archive_dir();
    let open = || SnapshotArchive::open(&dir).expect("bench archive opens");
    let (store, _) = SessionStore::with_config(StoreConfig {
        archive: Some(open()),
        idle_ttl: None,
        max_sessions: None,
    })
    .expect("store builds");
    let platform = platform_with_mtbf(8, 100.0);
    let scheduler = Scheduler::on(platform)
        .speedup(std::sync::Arc::new(PaperModel::default()))
        .strategy(OnlineStrategy::resizing(Heuristic::IteratedGreedyEndLocal));
    for s in 0..sessions {
        let jobs: Vec<JobSpec> = (0..4)
            .map(|j| JobSpec {
                task: TaskSpec {
                    size: 3_000.0 + 50.0 * ((s * 7 + j * 131) % 64) as f64,
                    ckpt_unit: 1.0,
                },
                release: 150.0 * j as f64,
            })
            .collect();
        let session = scheduler
            .clone()
            .faults(s as u64, platform.proc_mtbf)
            .session(&jobs)
            .expect("session builds");
        let id = store.insert(session, SpeedupSpec::Paper);
        let entry = store.get(id).expect("fresh session");
        step_quantum(&entry, 4).expect("prefix steps");
    }
    let (ok, failures) = store.checkpoint_all();
    assert_eq!(ok, sessions, "checkpoints: {failures:?}");
    drop(store);

    let (recovered, report) = SessionStore::with_config(StoreConfig {
        archive: Some(open()),
        idle_ttl: None,
        max_sessions: None,
    })
    .expect("recovery succeeds");
    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    let n = recovered.len();
    assert_eq!(n, sessions, "every session must recover");
    let _ = std::fs::remove_dir_all(&dir);
    n
}

/// The failover scenario: a 2-backend fleet (in-process hosts, real
/// sockets, disk archives) behind the supervising router. `sessions`
/// sessions are created over HTTP and checkpointed; `workers` client
/// threads then drive every session to completion through the router
/// while one backend is killed mid-drain (`restart_attempts: 0`, so the
/// supervisor migrates its checkpointed sessions onto the survivor).
/// Clients retry through the 503-shed window; the measured time is
/// create → checkpoint → kill → every session complete. Returns the
/// number of sessions that completed.
fn router_failover(sessions: usize, workers: usize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    let root = bench_archive_dir();
    let cfg = RouterConfig {
        supervisor: SupervisorConfig {
            probe_interval: Duration::from_millis(25),
            probe_timeout: Duration::from_millis(250),
            failure_threshold: 1,
            restart_attempts: 0,
            restart_budget: Duration::from_secs(5),
            drain_budget: Duration::from_secs(30),
            migrate_timeout: Duration::from_secs(10),
        },
        ..RouterConfig::default()
    };
    let specs = vec![
        BackendSpec { name: "b0".into(), archive_dir: root.join("b0") },
        BackendSpec { name: "b1".into(), archive_dir: root.join("b1") },
    ];
    let mut router =
        serve_router("127.0.0.1:0", cfg, Box::new(InProcessLauncher { workers: 2 }), specs)
            .expect("fleet boots");
    let addr = router.addr();
    let supervisor = std::sync::Arc::clone(router.supervisor());

    // Create over keep-alive connections; ids are globally sequential.
    let spec = r#"{"platform":{"procs":8},"jobs":[{"size":3000},{"size":5000,"release":150}]}"#;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                let mut c = client::Client::new(addr);
                for _ in (w..sessions).step_by(workers) {
                    let (status, body) = c.post("/v1/sessions", spec).expect("create");
                    assert_eq!(status, 201, "{body}");
                }
            });
        }
    });
    let (status, body) = client::post(addr, "/v1/admin/checkpoint", "").expect("checkpoint");
    assert_eq!(status, 200, "{body}");
    let checkpointed =
        Json::parse(&body).unwrap().get("checkpointed").and_then(Json::as_u64).unwrap();
    assert_eq!(checkpointed as usize, sessions, "{body}");

    // Drain through the router; kill b0 once a quarter of the fleet is
    // done. Workers ride out the shed window on retries.
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let done = &done;
            scope.spawn(move || {
                let mut c = client::Client::new(addr);
                for id in ((w + 1)..=sessions).step_by(workers) {
                    loop {
                        match c.post(&format!("/v1/sessions/{id}/run"), "") {
                            Ok((200, _)) => break,
                            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let done = &done;
        let supervisor = &supervisor;
        scope.spawn(move || {
            while done.load(Ordering::Relaxed) < sessions / 4 {
                std::thread::sleep(Duration::from_millis(1));
            }
            supervisor.kill_backend("b0");
        });
    });
    let completed = done.load(Ordering::Relaxed);
    assert_eq!(completed, sessions, "every session must complete despite the kill");
    router.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    completed
}

/// One fault-aware engine run: the unit of work behind every figure point.
fn engine_run(n: usize, p: u32, mtbf_years: f64, h: Heuristic) -> f64 {
    let platform = platform_with_mtbf(p, mtbf_years);
    let calc = TimeCalc::new(paper_workload(n, 5), platform);
    let out = run(
        &calc,
        &*h.end_policy(),
        &*h.fault_policy(),
        &EngineConfig::with_faults(9, platform.proc_mtbf),
    )
    .unwrap();
    out.makespan
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut budget = 2.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--budget" => {
                budget = args[i + 1].parse().expect("numeric budget");
                i += 2;
            }
            "--only" => {
                only = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let mut results: Vec<(&'static str, f64, u64)> = Vec::new();
    let mut record = |name: &'static str, r: (f64, u64)| {
        eprintln!("{name}: {:.6} s/iter ({} iters)", r.0, r.1);
        results.push((name, r.0, r.1));
    };
    let enabled = |name: &str| only.as_deref().is_none_or(|f| name.contains(f));
    // Times-and-records a scenario only when it passes the `--only`
    // filter; macro expansion keeps the timing expression unevaluated
    // for filtered-out scenarios (a closure argument would run it).
    macro_rules! scenario {
        ($name:expr, $r:expr $(,)?) => {
            if enabled($name) {
                record($name, $r);
            }
        };
    }

    // Time-table construction: dense per-(task, allocation) parameter sweep
    // over every j ∈ 1..=p (both parities — the engine queries odd sizes
    // through `improvable_up_to` prefixes and the online admission scan).
    scenario!(
        "table_dense_n100_p400",
        time_budgeted(budget, || {
            let calc = TimeCalc::new(paper_workload(100, 3), platform_with_mtbf(400, 100.0));
            let mut acc = 0.0;
            for i in 0..100 {
                for j in 1..=400u32 {
                    acc += calc.remaining(i, j, 1.0);
                }
            }
            std::hint::black_box(acc);
        }),
    );

    // Engine event loop, pure (no redistribution policy): scans vs heap.
    for (name, n, p) in [
        ("engine_loop_n10_p50", 10usize, 50u32),
        ("engine_loop_n100_p500", 100, 500),
        ("engine_loop_n1000_p5000", 1000, 5000),
    ] {
        scenario!(
            name,
            time_budgeted(budget, || {
                std::hint::black_box(engine_run(n, p, 10.0, Heuristic::NoRedistribution));
            }),
        );
    }

    // Engine with full redistribution heuristics (policy cost included).
    scenario!(
        "engine_igel_n100_p500",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(100, 500, 10.0, Heuristic::IteratedGreedyEndLocal));
        }),
    );
    scenario!(
        "engine_stfel_n1000_p5000",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(
                1000,
                5000,
                10.0,
                Heuristic::ShortestTasksFirstEndLocal,
            ));
        }),
    );

    // Fault storms: a short MTBF makes fault-policy invocations (not the
    // bare event loop) the dominant cost — the incremental-policy target.
    scenario!(
        "engine_storm_igel_n100_p500",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(100, 500, 2.0, Heuristic::IteratedGreedyEndLocal));
        }),
    );
    scenario!(
        "engine_storm_stfeg_n100_p500",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(
                100,
                500,
                2.0,
                Heuristic::ShortestTasksFirstEndGreedy,
            ));
        }),
    );
    scenario!(
        "engine_storm_stfel_n1000_p5000",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(
                1000,
                5000,
                2.0,
                Heuristic::ShortestTasksFirstEndLocal,
            ));
        }),
    );

    // Greedy-policy scale targets (PR 5): Algorithm 5 at n = 1000 on 5000
    // processors. The storm variant (2-year MTBF) makes IteratedGreedy
    // invocations dominate; the paper-MTBF variant runs the full greedy
    // combination (EndGreedy at ends + IteratedGreedy on faults).
    scenario!(
        "engine_storm_igel_n1000_p5000",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(
                1000,
                5000,
                2.0,
                Heuristic::IteratedGreedyEndLocal,
            ));
        }),
    );
    scenario!(
        "engine_ig_n1000_p5000",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(
                1000,
                5000,
                10.0,
                Heuristic::IteratedGreedyEndGreedy,
            ));
        }),
    );
    // The opt-in approximate warm rebuild on the same storm workload: the
    // greedy loop resumes from the committed allocation instead of
    // resetting every participant, so its per-event cost scales with the
    // affected set — compare against engine_storm_igel_n1000_p5000 for the
    // exact-path counterpart.
    scenario!(
        "engine_storm_warmgreedy_n1000_p5000",
        time_budgeted(budget, || {
            std::hint::black_box(engine_run(1000, 5000, 2.0, Heuristic::WarmGreedy));
        }),
    );

    // Static campaign throughput: one (n, p, MTBF) figure point, 32 runs,
    // baseline + two heuristics per run.
    scenario!(
        "campaign_static_n10_p60_x32",
        time_budgeted(budget.max(4.0), || {
            let cfg = PointConfig {
                workload: WorkloadParams::paper_default(10),
                p: 60,
                mtbf_years: 10.0,
                downtime: 60.0,
                runs: 32,
                base_seed: 0xC0_5CED,
            };
            let stats = run_point(
                &cfg,
                Variant::FaultNoRc,
                &[
                    Variant::FaultNoRc,
                    Variant::Fault(Heuristic::IteratedGreedyEndLocal),
                    Variant::Fault(Heuristic::ShortestTasksFirstEndLocal),
                ],
            )
            .unwrap();
            std::hint::black_box(stats[1].mean_ratio);
        }),
    );

    // Paper-scale campaign point: n = 100 tasks on 500 processors, 8 runs
    // (each full figure point is 50 of these per curve).
    scenario!(
        "campaign_static_n100_p500_x8",
        time_budgeted(budget.max(4.0), || {
            let cfg = PointConfig {
                workload: WorkloadParams::paper_default(100),
                p: 500,
                mtbf_years: 10.0,
                downtime: 60.0,
                runs: 8,
                base_seed: 0xC0_5CED,
            };
            let stats = run_point(
                &cfg,
                Variant::FaultNoRc,
                &[
                    Variant::FaultNoRc,
                    Variant::Fault(Heuristic::IteratedGreedyEndLocal),
                    Variant::Fault(Heuristic::ShortestTasksFirstEndLocal),
                ],
            )
            .unwrap();
            std::hint::black_box(stats[1].mean_ratio);
        }),
    );

    // Arrival-heavy online run: a deep admission backlog makes the
    // arrival/rebalance path (not the steady event loop) the dominant cost.
    scenario!(
        "campaign_online_heavy_j64_p64_x8",
        time_budgeted(budget.max(4.0), || {
            let cfg = OnlinePointConfig {
                jobs: 64,
                mean_interarrival: 400.0,
                sizes: JobSizeModel::paper_default(),
                seq_fraction: 0.08,
                p: 64,
                mtbf_years: 20.0,
                runs: 8,
                base_seed: 0x0A44_1BAD,
            };
            let stats = run_online_point(&cfg, &campaign_strategies()).unwrap();
            std::hint::black_box(stats[1].stretch_ratio);
        }),
    );

    // Multi-pack oversubscription: bursts of 16 jobs on p = 16 processors
    // (2·waiting > p) force the session to stage consecutive packs, so the
    // staging/partitioning/pack-rotation path dominates.
    scenario!(
        "session_multipack_j64_p16",
        time_budgeted(budget, || {
            let mut arrivals = BurstyArrivals::new(5, 16, 50_000.0);
            let jobs = generate_jobs(&mut arrivals, 64, &JobSizeModel::paper_default(), 5);
            let platform = platform_with_mtbf(16, 10.0);
            let out = Scheduler::on(platform)
                .speedup(std::sync::Arc::new(PaperModel::default()))
                .strategy(OnlineStrategy::resizing(Heuristic::IteratedGreedyEndLocal))
                .config(OnlineConfig::with_faults(9, platform.proc_mtbf))
                .staging(PackStaging::oversubscribed())
                .run(&jobs)
                .unwrap();
            std::hint::black_box((out.makespan, out.packs.len()));
        }),
    );

    // Scheduler-as-a-service headline: 10k concurrent sessions in one
    // SessionStore, drained by a worker pool advancing each session at
    // most 8 events per visit (the host's batched-stepping loop). The
    // mean converts straight into a sessions/second throughput.
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get).min(8);
    if enabled("service_sessions_10k") {
        let r = time_budgeted(budget.max(4.0), || {
            std::hint::black_box(service_load(10_000, workers, 8));
        });
        eprintln!(
            "service_sessions_10k: {:.0} sessions/s across {workers} workers",
            10_000.0 / r.0
        );
        record("service_sessions_10k", r);
    }

    // Durability path: checkpoint 1k mid-run sessions to disk and recover
    // a fresh store from the archive (the crash/restart drill).
    if enabled("service_checkpoint_recover_1k") {
        let r = time_budgeted(budget.max(2.0), || {
            std::hint::black_box(service_checkpoint_recover(1_000));
        });
        eprintln!(
            "service_checkpoint_recover_1k: {:.0} sessions/s through disk",
            1_000.0 / r.0
        );
        record("service_checkpoint_recover_1k", r);
    }

    // Fleet resilience headline: 1k sessions through the supervising
    // router with one backend killed mid-drain — the measured time is
    // until every session (including the migrated half) completes.
    if enabled("router_failover_1k") {
        let r = time_budgeted(budget.max(2.0), || {
            std::hint::black_box(router_failover(1_000, workers));
        });
        eprintln!(
            "router_failover_1k: {:.3} s to all-complete with one backend killed mid-drain",
            r.0
        );
        record("router_failover_1k", r);
    }

    // Router data-plane headline: 10k small proxied reads through a
    // 2-backend fleet. The pooled scenario rides keep-alive connections
    // end to end (client → router and router → backend); the `_per_conn`
    // baseline is the same 10k requests paying a fresh TCP connection
    // per request — the pre-pool data plane — measured in the same run
    // so the ratio is machine-independent.
    if enabled("router_proxy_10k") {
        let root = bench_archive_dir();
        let specs = vec![
            BackendSpec { name: "b0".into(), archive_dir: root.join("b0") },
            BackendSpec { name: "b1".into(), archive_dir: root.join("b1") },
        ];
        let mut router = serve_router(
            "127.0.0.1:0",
            RouterConfig::default(),
            Box::new(InProcessLauncher { workers: 4 }),
            specs,
        )
        .expect("fleet boots");
        let addr = router.addr();
        let spec =
            r#"{"platform":{"procs":8},"jobs":[{"size":3000},{"size":5000,"release":150}]}"#;
        let ids: Vec<u64> = (0..16)
            .map(|_| {
                let (status, body) = client::post(addr, "/v1/sessions", spec).expect("create");
                assert_eq!(status, 201, "{body}");
                Json::parse(&body).unwrap().get("id").and_then(Json::as_u64).unwrap()
            })
            .collect();
        let proxy_sweep = |keep_alive: bool, total: usize| {
            let ids = &ids;
            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || {
                        let mut c = client::Client::new(addr);
                        for k in (w..total).step_by(workers) {
                            let path = format!("/v1/sessions/{}", ids[k % ids.len()]);
                            let (status, _) = if keep_alive {
                                c.get(&path).expect("proxied read")
                            } else {
                                client::get(addr, &path).expect("proxied read")
                            };
                            assert_eq!(status, 200);
                        }
                    });
                }
            });
        };
        let pooled = time_budgeted(budget.max(2.0), || proxy_sweep(true, 10_000));
        eprintln!(
            "router_proxy_10k: {:.0} proxied reads/s across {workers} workers",
            10_000.0 / pooled.0
        );
        record("router_proxy_10k", pooled);
        // The baseline sweep is 10x smaller with its own short budget:
        // connection-per-request burns one ephemeral port per read, and a
        // full 10k sweep drives the port table into TIME_WAIT exhaustion
        // — the measurement would time SYN retries, not the data plane.
        let per_conn = time_budgeted(1.0, || proxy_sweep(false, 1_000));
        eprintln!(
            "router_proxy_per_conn_1k: {:.0} reads/s; pooled speedup {:.2}x per request",
            1_000.0 / per_conn.0,
            (per_conn.0 / 1_000.0) / (pooled.0 / 10_000.0)
        );
        record("router_proxy_per_conn_1k", per_conn);
        router.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    // Archive restart scan over a 10k-snapshot archive (~3 KB each): the
    // manifest-trusting scan stats the named files; the `_walk` baseline
    // deletes the manifest first, forcing the full read-and-CRC directory
    // walk the manifest replaces. Same run, same files, same disk cache.
    if enabled("archive_scan_10k") {
        let dir = bench_archive_dir();
        {
            let archive = SnapshotArchive::open(&dir).expect("bench archive opens");
            for id in 0..10_000u64 {
                let payload = vec![(id % 251) as u8; 2048 + (id % 5) as usize * 512];
                archive.store(id, &payload).expect("store");
            }
            archive.flush_manifest().expect("manifest flush");
        }
        let scan_all = || {
            let archive = SnapshotArchive::open(&dir).expect("bench archive opens");
            let report = archive.scan().expect("scan");
            assert_eq!(report.restored.len(), 10_000, "every snapshot restores");
            std::hint::black_box(report.restored.len());
        };
        let manifest = time_budgeted(budget.max(2.0), &scan_all);
        eprintln!("archive_scan_10k: {:.0} snapshots/s via manifest", 10_000.0 / manifest.0);
        record("archive_scan_10k", manifest);
        let walk = time_budgeted(budget.max(2.0), || {
            std::fs::remove_file(dir.join("manifest")).expect("drop manifest");
            scan_all();
        });
        eprintln!(
            "archive_scan_10k_walk: {:.0} snapshots/s; manifest speedup {:.2}x",
            10_000.0 / walk.0,
            walk.0 / manifest.0
        );
        record("archive_scan_10k_walk", walk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Online campaign throughput: 5 strategies × 16 runs of 24 jobs.
    scenario!(
        "campaign_online_j24_p48_x16",
        time_budgeted(budget.max(4.0), || {
            let cfg = OnlinePointConfig {
                jobs: 24,
                mean_interarrival: 2_000.0,
                sizes: JobSizeModel::paper_default(),
                seq_fraction: 0.08,
                p: 48,
                mtbf_years: 20.0,
                runs: 16,
                base_seed: 0x0511_11E5,
            };
            let stats = run_online_point(&cfg, &campaign_strategies()).unwrap();
            std::hint::black_box(stats[1].stretch_ratio);
        }),
    );

    let mut json = String::from("{\n  \"scenarios\": {\n");
    for (k, (name, mean, iters)) in results.iter().enumerate() {
        let comma = if k + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"mean_seconds\": {mean:.9}, \"iters\": {iters}}}{comma}"
        );
    }
    json.push_str("  }\n}\n");
    match out_path {
        Some(p) => std::fs::write(&p, &json).expect("write output file"),
        None => print!("{json}"),
    }
}
