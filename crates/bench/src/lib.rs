//! Shared fixtures for the `redistrib` benchmark suite.

#![warn(clippy::all)]

use std::sync::Arc;

use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
use redistrib_sim::rng::Xoshiro256;
use redistrib_sim::units;

/// Builds a paper-style workload of `n` tasks with sizes in
/// `[1.5e6, 2.5e6]`, deterministic in `seed`.
#[must_use]
pub fn paper_workload(n: usize, seed: u64) -> Workload {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let tasks = (0..n).map(|_| TaskSpec::new(rng.uniform(1.5e6, 2.5e6))).collect();
    Workload::new(tasks, Arc::new(PaperModel::default()))
}

/// A platform with the paper's default per-processor MTBF (100 years).
#[must_use]
pub fn paper_platform(p: u32) -> Platform {
    Platform::with_mtbf(p, units::years(100.0))
}

/// A platform with a configurable MTBF in years.
#[must_use]
pub fn platform_with_mtbf(p: u32, mtbf_years: f64) -> Platform {
    Platform::with_mtbf(p, units::years(mtbf_years))
}

/// Fault-aware calculator at paper defaults.
#[must_use]
pub fn fault_calc(n: usize, p: u32, seed: u64) -> TimeCalc {
    TimeCalc::new(paper_workload(n, seed), paper_platform(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let calc = fault_calc(10, 100, 1);
        assert_eq!(calc.num_tasks(), 10);
        assert!(calc.remaining(0, 4, 1.0) > 0.0);
    }
}
