//! Structured execution traces for post-hoc analysis and the Fig. 9-style
//! per-fault time series.

use std::fmt::Write as _;

/// One record in a simulation trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A processor fault struck a running task.
    Fault {
        /// Simulation time of the fault.
        time: f64,
        /// Failed processor.
        proc: u32,
        /// Task running on that processor.
        task: usize,
    },
    /// A fault struck an idle processor or a protected window and was
    /// discarded.
    FaultDiscarded {
        /// Simulation time of the fault.
        time: f64,
        /// Failed processor.
        proc: u32,
    },
    /// A task completed.
    TaskEnd {
        /// Completion time.
        time: f64,
        /// The completed task.
        task: usize,
    },
    /// A task's allocation changed from `from` to `to` processors.
    Redistribution {
        /// Decision time.
        time: f64,
        /// Task whose allocation changed.
        task: usize,
        /// Previous allocation size.
        from: u32,
        /// New allocation size.
        to: u32,
        /// Data-movement cost `RC` paid.
        cost: f64,
    },
    /// Estimated makespan snapshot after handling an event (Fig. 9a).
    MakespanEstimate {
        /// Snapshot time.
        time: f64,
        /// Current `max_i t^U_i` over active tasks.
        makespan: f64,
        /// Population std-dev of per-task allocation sizes (Fig. 9b).
        alloc_stddev: f64,
    },
    /// A job was released into the online system (online co-scheduling).
    JobArrival {
        /// Release time of the job.
        time: f64,
        /// The arriving job.
        job: usize,
    },
    /// A job left the admission queue and started executing.
    JobStart {
        /// Start time.
        time: f64,
        /// The started job.
        job: usize,
        /// Initial allocation granted by the admission layer.
        alloc: u32,
    },
    /// A job could not start (fewer than two free processors) and was
    /// queued.
    JobQueued {
        /// Time the job entered the queue.
        time: f64,
        /// The queued job.
        job: usize,
    },
    /// A staged pack opened for admission (multi-pack online scheduling):
    /// its member jobs became admissible.
    PackStart {
        /// Time the pack opened.
        time: f64,
        /// Pack id, `0..` in opening order.
        pack: usize,
        /// Number of member jobs.
        jobs: u32,
    },
}

impl TraceEvent {
    /// The simulation time of the record.
    #[must_use]
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::Fault { time, .. }
            | TraceEvent::FaultDiscarded { time, .. }
            | TraceEvent::TaskEnd { time, .. }
            | TraceEvent::Redistribution { time, .. }
            | TraceEvent::MakespanEstimate { time, .. }
            | TraceEvent::JobArrival { time, .. }
            | TraceEvent::JobStart { time, .. }
            | TraceEvent::JobQueued { time, .. }
            | TraceEvent::PackStart { time, .. } => time,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::FaultDiscarded { .. } => "fault_discarded",
            TraceEvent::TaskEnd { .. } => "task_end",
            TraceEvent::Redistribution { .. } => "redistribution",
            TraceEvent::MakespanEstimate { .. } => "makespan",
            TraceEvent::JobArrival { .. } => "job_arrival",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobQueued { .. } => "job_queued",
            TraceEvent::PackStart { .. } => "pack_start",
        }
    }
}

/// An append-only trace log.
///
/// Recording can be disabled (the default for large experiment sweeps) in
/// which case `push` is a no-op, so engines can log unconditionally.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates a recording log.
    #[must_use]
    pub fn enabled() -> Self {
        Self { enabled: true, events: Vec::new() }
    }

    /// Creates a disabled (no-op) log.
    #[must_use]
    pub fn disabled() -> Self {
        Self { enabled: false, events: Vec::new() }
    }

    /// Reassembles a log from previously recorded events — the restore half
    /// of session snapshotting. The event vector is taken verbatim, so a
    /// log rebuilt from [`TraceLog::events`] is indistinguishable from the
    /// original (same CSV bytes, same counts).
    #[must_use]
    pub fn from_events(enabled: bool, events: Vec<TraceEvent>) -> Self {
        Self { enabled, events }
    }

    /// Whether records are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events in insertion order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over the makespan snapshots (the Fig. 9 series).
    pub fn makespan_series(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.events.iter().filter_map(|e| match *e {
            TraceEvent::MakespanEstimate { time, makespan, alloc_stddev } => {
                Some((time, makespan, alloc_stddev))
            }
            _ => None,
        })
    }

    /// Number of handled (non-discarded) faults.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Fault { .. })).count()
    }

    /// Number of redistribution records.
    #[must_use]
    pub fn redistribution_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Redistribution { .. })).count()
    }

    /// Renders the log as CSV with header
    /// `time,kind,task,proc,from,to,cost,makespan,alloc_stddev` (empty cells
    /// where a column does not apply).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.events.len() + 1));
        out.push_str("time,kind,task,proc,from,to,cost,makespan,alloc_stddev\n");
        for e in &self.events {
            let _ = write!(out, "{},{}", e.time(), e.kind());
            match *e {
                TraceEvent::Fault { task, proc, .. } => {
                    let _ = write!(out, ",{task},{proc},,,,,");
                }
                TraceEvent::FaultDiscarded { proc, .. } => {
                    let _ = write!(out, ",,{proc},,,,,");
                }
                TraceEvent::TaskEnd { task, .. } => {
                    let _ = write!(out, ",{task},,,,,,");
                }
                TraceEvent::Redistribution { task, from, to, cost, .. } => {
                    let _ = write!(out, ",{task},,{from},{to},{cost},,");
                }
                TraceEvent::MakespanEstimate { makespan, alloc_stddev, .. } => {
                    let _ = write!(out, ",,,,,,{makespan},{alloc_stddev}");
                }
                TraceEvent::JobArrival { job, .. } | TraceEvent::JobQueued { job, .. } => {
                    let _ = write!(out, ",{job},,,,,,");
                }
                TraceEvent::JobStart { job, alloc, .. } => {
                    let _ = write!(out, ",{job},,,{alloc},,,");
                }
                TraceEvent::PackStart { pack, jobs, .. } => {
                    let _ = write!(out, ",{pack},,,{jobs},,,");
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_ignores_pushes() {
        let mut log = TraceLog::disabled();
        log.push(TraceEvent::TaskEnd { time: 1.0, task: 0 });
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::enabled();
        log.push(TraceEvent::TaskEnd { time: 1.0, task: 0 });
        log.push(TraceEvent::Fault { time: 2.0, proc: 3, task: 1 });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].time(), 1.0);
        assert_eq!(log.events()[1].time(), 2.0);
    }

    #[test]
    fn counts() {
        let mut log = TraceLog::enabled();
        log.push(TraceEvent::Fault { time: 1.0, proc: 0, task: 0 });
        log.push(TraceEvent::FaultDiscarded { time: 2.0, proc: 1 });
        log.push(TraceEvent::Fault { time: 3.0, proc: 2, task: 1 });
        log.push(TraceEvent::Redistribution { time: 3.0, task: 1, from: 2, to: 4, cost: 5.0 });
        assert_eq!(log.fault_count(), 2);
        assert_eq!(log.redistribution_count(), 1);
    }

    #[test]
    fn makespan_series_extraction() {
        let mut log = TraceLog::enabled();
        log.push(TraceEvent::MakespanEstimate { time: 1.0, makespan: 10.0, alloc_stddev: 0.5 });
        log.push(TraceEvent::TaskEnd { time: 2.0, task: 0 });
        log.push(TraceEvent::MakespanEstimate { time: 3.0, makespan: 9.0, alloc_stddev: 0.7 });
        let series: Vec<_> = log.makespan_series().collect();
        assert_eq!(series, vec![(1.0, 10.0, 0.5), (3.0, 9.0, 0.7)]);
    }

    #[test]
    fn online_event_kinds_roundtrip() {
        let mut log = TraceLog::enabled();
        log.push(TraceEvent::JobArrival { time: 1.0, job: 3 });
        log.push(TraceEvent::JobQueued { time: 1.0, job: 3 });
        log.push(TraceEvent::JobStart { time: 2.5, job: 3, alloc: 4 });
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "1,job_arrival,3,,,,,,");
        assert_eq!(lines[2], "1,job_queued,3,,,,,,");
        assert_eq!(lines[3], "2.5,job_start,3,,,4,,,");
        for l in &lines {
            assert_eq!(l.matches(',').count(), 8, "line: {l}");
        }
        assert_eq!(log.events()[2].time(), 2.5);
    }

    #[test]
    fn csv_shape() {
        let mut log = TraceLog::enabled();
        log.push(TraceEvent::Fault { time: 1.5, proc: 2, task: 7 });
        log.push(TraceEvent::Redistribution { time: 2.0, task: 7, from: 2, to: 6, cost: 12.5 });
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time,kind"));
        assert_eq!(lines[1], "1.5,fault,7,2,,,,,");
        assert_eq!(lines[2], "2,redistribution,7,,2,6,12.5,,");
        // Constant column count.
        for l in &lines {
            assert_eq!(l.matches(',').count(), 8, "line: {l}");
        }
    }
}
