//! Probability distributions for fault inter-arrival times.
//!
//! The paper's evaluation uses an exponential law of parameter `λ` (§6.1);
//! the fault simulator it builds on ([Bougeret et al. 2011; Bosilca et al.
//! 2014]) also supports Weibull and log-normal laws, which we provide as
//! documented extensions for sensitivity studies.

use crate::rng::Xoshiro256;

/// A distribution over positive inter-arrival times.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Xoshiro256) -> f64;

    /// Theoretical mean, if finite.
    fn mean(&self) -> f64;
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// This is the paper's fault law: memoryless, so a processor's fault process
/// is a Poisson process and the MTBF of a task on `j` processors is `µ/j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential law with the given rate `λ > 0`.
    ///
    /// # Panics
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate }
    }

    /// Creates an exponential law from its mean (MTBF) `µ = 1/λ`.
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    #[must_use]
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self { rate: 1.0 / mean }
    }

    /// The rate parameter `λ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        // Inverse CDF: F^{-1}(u) = -ln(1-u)/λ; using the open-interval draw
        // avoids ln(0).
        -rng.next_f64_open().ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Weibull distribution with shape `k` and scale `λ`.
///
/// Field studies of HPC failures often report shape parameters below 1
/// (decreasing hazard rate); provided as an extension to the paper's
/// exponential model (`shape = 1` degenerates to exponential).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull law.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    #[must_use]
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Self { shape, scale }
    }

    /// Creates a Weibull law with the given shape and the scale chosen so the
    /// mean equals `mean`.
    #[must_use]
    pub fn from_mean(shape: f64, mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Self::new(shape, scale)
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        // Inverse CDF: λ (-ln(1-u))^{1/k}.
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Log-normal distribution: `exp(N(µ, σ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal law from the parameters of the underlying normal.
    ///
    /// # Panics
    /// Panics unless `sigma` is finite and positive and `mu` is finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        Self { mu, sigma }
    }

    /// Creates a log-normal law with the given arithmetic mean and the given
    /// `sigma` of the underlying normal.
    #[must_use]
    pub fn from_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        Self::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// One draw from N(0, 1) via Box–Muller (the cosine branch only; the
/// simulator never needs paired draws, and an unpaired transform keeps the
/// per-stream consumption rate fixed at two uniforms per normal).
fn standard_normal(rng: &mut Xoshiro256) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lanczos approximation of the gamma function, accurate to ~1e-13 on the
/// positive reals we use (arguments in `(1, 3]` for Weibull means).
fn gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Godfrey).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Type-erased distribution choice, convenient for configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultLaw {
    /// Exponential with the given MTBF (the paper's model).
    Exponential {
        /// Mean time between failures of one processor.
        mtbf: f64,
    },
    /// Weibull with given shape, scaled to the given mean.
    Weibull {
        /// Shape parameter `k`.
        shape: f64,
        /// Mean inter-arrival time.
        mtbf: f64,
    },
    /// Log-normal with the given mean and underlying-normal sigma.
    LogNormal {
        /// Mean inter-arrival time.
        mtbf: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl FaultLaw {
    /// Draws one inter-arrival time.
    pub fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        match *self {
            FaultLaw::Exponential { mtbf } => Exponential::from_mean(mtbf).sample(rng),
            FaultLaw::Weibull { shape, mtbf } => Weibull::from_mean(shape, mtbf).sample(rng),
            FaultLaw::LogNormal { mtbf, sigma } => {
                LogNormal::from_mean(mtbf, sigma).sample(rng)
            }
        }
    }

    /// Theoretical mean inter-arrival time.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            FaultLaw::Exponential { mtbf }
            | FaultLaw::Weibull { mtbf, .. }
            | FaultLaw::LogNormal { mtbf, .. } => mtbf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dist: &impl Distribution, seed: u64, n: u32) -> f64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let sum: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        sum / f64::from(n)
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(100.0);
        let m = sample_mean(&d, 1, 200_000);
        assert!((m - 100.0).abs() / 100.0 < 0.01, "mean = {m}");
    }

    #[test]
    fn exponential_rate_and_mean_roundtrip() {
        let d = Exponential::new(0.25);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((Exponential::from_mean(4.0).rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_positive_samples() {
        let d = Exponential::from_mean(1.0);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_memorylessness_proxy() {
        // P(X > 2m) should be about e^{-2} regardless of scale.
        let d = Exponential::from_mean(10.0);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let n = 100_000;
        let over = (0..n).filter(|_| d.sample(&mut rng) > 20.0).count();
        let frac = over as f64 / f64::from(n);
        let expected = (-2.0f64).exp();
        assert!((frac - expected).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exponential_rejects_negative_mean() {
        let _ = Exponential::from_mean(-1.0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::from_mean(1.0, 50.0);
        let e = Exponential::from_mean(50.0);
        // Identical sampling formula at shape 1 given the same draws.
        let mut r1 = Xoshiro256::seed_from_u64(4);
        let mut r2 = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            let a = w.sample(&mut r1);
            let b = e.sample(&mut r2);
            assert!((a - b).abs() < 1e-9 * b.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn weibull_mean_matches() {
        let d = Weibull::from_mean(0.7, 30.0);
        assert!((d.mean() - 30.0).abs() < 1e-9);
        let m = sample_mean(&d, 5, 400_000);
        assert!((m - 30.0).abs() / 30.0 < 0.02, "mean = {m}");
    }

    #[test]
    fn lognormal_mean_matches() {
        let d = LogNormal::from_mean(5.0, 0.8);
        assert!((d.mean() - 5.0).abs() < 1e-9);
        let m = sample_mean(&d, 6, 400_000);
        assert!((m - 5.0).abs() / 5.0 < 0.02, "mean = {m}");
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-10);
        assert!((gamma(4.0) - 6.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        // Γ(1.5) = √π/2.
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn fault_law_means() {
        assert!((FaultLaw::Exponential { mtbf: 9.0 }.mean() - 9.0).abs() < 1e-12);
        let w = FaultLaw::Weibull { shape: 0.7, mtbf: 9.0 };
        assert!((w.mean() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn fault_law_sampling_deterministic() {
        let law = FaultLaw::Exponential { mtbf: 100.0 };
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(law.sample(&mut a), law.sample(&mut b));
        }
    }
}
