//! A deterministic discrete-event queue over `f64` simulation time.
//!
//! Events are ordered by time; ties are broken by insertion sequence number so
//! the pop order is fully deterministic (a requirement for replayable
//! simulations — `BinaryHeap` alone is not stable for equal keys).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation timestamp. Must be finite; the queue asserts this on push.
pub type Time = f64;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Times are asserted finite on push, so partial_cmp cannot fail.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-priority queue of timestamped events with stable FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or infinite.
    pub fn push(&mut self, time: Time, payload: T) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5.0, 1);
        q.push(5.0, 2);
        q.push(5.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7.5, ());
        assert_eq!(q.peek_time(), Some(7.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(2.0, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinity() {
        let mut q = EventQueue::new();
        q.push(f64::INFINITY, ());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(10.0, "late");
        q.push(1.0, "early");
        assert_eq!(q.pop(), Some((1.0, "early")));
        q.push(5.0, "mid");
        assert_eq!(q.pop(), Some((5.0, "mid")));
        assert_eq!(q.pop(), Some((10.0, "late")));
    }

    #[test]
    fn large_volume_sorted() {
        use crate::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.push(rng.next_f64() * 1e6, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
