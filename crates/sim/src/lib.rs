//! # redistrib-sim
//!
//! Deterministic discrete-event simulation substrate for the `redistrib`
//! project (reproduction of Benoit, Pottier, Robert, *Resilient application
//! co-scheduling with processor redistribution*, ICPP 2016).
//!
//! This crate rebuilds the fault-simulator substrate the paper relies on:
//!
//! * [`rng`] — portable, hand-rolled PRNGs (SplitMix64, xoshiro256++) with
//!   per-stream derivation so fault traces are pure functions of
//!   `(seed, processor)`;
//! * [`dist`] — exponential (the paper's law), Weibull and log-normal
//!   inter-arrival distributions;
//! * [`event`] — a stable-order event queue over `f64` time;
//! * [`faults`] — lazy per-processor fault streams merged in time order,
//!   replayable independently of scheduling decisions;
//! * [`stats`] — Welford accumulators, quantiles, histograms;
//! * [`trace`] — structured execution traces (fault/redistribution/makespan
//!   records) with CSV export;
//! * [`units`] — seconds/days/years conversions.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dist;
pub mod event;
pub mod faults;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod units;

pub use dist::{Distribution, Exponential, FaultLaw, LogNormal, Weibull};
pub use event::EventQueue;
pub use faults::{Fault, FaultSource, FaultStream, ProcId};
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{stddev_population, summarize, Histogram, Summary, Welford};
pub use trace::{TraceEvent, TraceLog};
