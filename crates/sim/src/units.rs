//! Time-unit constants and conversions.
//!
//! The simulation clock is in seconds. The paper quotes MTBFs in years and
//! fault-free makespans in days.

/// Seconds per minute.
pub const MINUTE: f64 = 60.0;
/// Seconds per hour.
pub const HOUR: f64 = 3_600.0;
/// Seconds per day.
pub const DAY: f64 = 86_400.0;
/// Seconds per (Julian) year — 365.25 days, the convention in the resilience
/// literature for MTBF conversions.
pub const YEAR: f64 = 365.25 * DAY;

/// Converts years to seconds.
#[must_use]
pub fn years(y: f64) -> f64 {
    y * YEAR
}

/// Converts days to seconds.
#[must_use]
pub fn days(d: f64) -> f64 {
    d * DAY
}

/// Converts hours to seconds.
#[must_use]
pub fn hours(h: f64) -> f64 {
    h * HOUR
}

/// Converts seconds to days (for reporting).
#[must_use]
pub fn to_days(seconds: f64) -> f64 {
    seconds / DAY
}

/// Converts seconds to years (for reporting).
#[must_use]
pub fn to_years(seconds: f64) -> f64 {
    seconds / YEAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(years(1.0), YEAR);
        assert_eq!(days(2.0), 2.0 * DAY);
        assert_eq!(hours(3.0), 3.0 * HOUR);
        assert!((to_days(days(5.5)) - 5.5).abs() < 1e-12);
        assert!((to_years(years(100.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn magnitudes() {
        assert_eq!(DAY, 24.0 * HOUR);
        assert_eq!(HOUR, 60.0 * MINUTE);
        assert!((YEAR / DAY - 365.25).abs() < 1e-9);
    }
}
