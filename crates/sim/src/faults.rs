//! Per-processor fault-trace generation.
//!
//! Reproduces the role of the fault simulator used in the paper (§6.1, refs
//! [20, 21]): each processor carries an independent renewal process whose
//! inter-arrival times follow a configurable law (exponential by default).
//!
//! Two properties matter for the evaluation methodology:
//!
//! 1. **Policy independence** — the fault times of processor `k` depend only
//!    on `(seed, k)`, never on how many faults other processors had or on
//!    what the scheduler did. The paper normalizes each heuristic's makespan
//!    by the no-redistribution baseline *on the same fault trace*; this
//!    requires replaying identical traces across policies.
//! 2. **Laziness** — traces are unbounded streams; times are generated on
//!    demand, so simulations of any length are supported without
//!    pre-materializing.

use crate::dist::FaultLaw;
use crate::event::EventQueue;
use crate::rng::Xoshiro256;

/// Identifier of a processor in `0..p`.
pub type ProcId = u32;

/// Lazy, unbounded fault stream for a single processor.
#[derive(Debug, Clone)]
pub struct FaultStream {
    rng: Xoshiro256,
    law: FaultLaw,
    next_time: f64,
}

impl FaultStream {
    /// Creates the stream for processor `proc` of run `seed`.
    #[must_use]
    pub fn new(seed: u64, proc: ProcId, law: FaultLaw) -> Self {
        let mut rng = Xoshiro256::stream(seed, u64::from(proc));
        let first = law.sample(&mut rng);
        Self { rng, law, next_time: first }
    }

    /// Time of the next fault on this processor.
    #[must_use]
    pub fn peek(&self) -> f64 {
        self.next_time
    }

    /// Consumes and returns the next fault time, advancing the renewal
    /// process.
    pub fn advance(&mut self) -> f64 {
        let t = self.next_time;
        self.next_time += self.law.sample(&mut self.rng);
        t
    }
}

/// A fault event: processor `proc` fails at `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Absolute simulation time of the failure.
    pub time: f64,
    /// The processor that fails.
    pub proc: ProcId,
}

/// Merged fault source over all `p` processors, yielding faults in global
/// time order.
///
/// Internally a priority queue of per-processor streams; `O(log p)` per
/// fault.
///
/// ```
/// use redistrib_sim::{FaultLaw, FaultSource};
/// let law = FaultLaw::Exponential { mtbf: 100.0 };
/// let faults: Vec<_> = FaultSource::new(42, 8, law).take(5).collect();
/// assert!(faults.windows(2).all(|w| w[0].time <= w[1].time));
/// // Replay is exact: the trace is a pure function of (seed, p, law).
/// let again: Vec<_> = FaultSource::new(42, 8, law).take(5).collect();
/// assert_eq!(faults, again);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSource {
    streams: Vec<FaultStream>,
    queue: EventQueue<ProcId>,
}

impl FaultSource {
    /// Creates the fault source for a platform of `p` processors.
    ///
    /// The trace is fully determined by `(seed, law, p)`; adding processors
    /// does not perturb the traces of existing ones.
    #[must_use]
    pub fn new(seed: u64, p: u32, law: FaultLaw) -> Self {
        let streams: Vec<FaultStream> =
            (0..p).map(|k| FaultStream::new(seed, k, law)).collect();
        let mut queue = EventQueue::with_capacity(p as usize);
        for (k, s) in streams.iter().enumerate() {
            queue.push(s.peek(), k as ProcId);
        }
        Self { streams, queue }
    }

    /// Time of the next fault anywhere on the platform.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Pops the next fault in global time order.
    pub fn next_fault(&mut self) -> Option<Fault> {
        let (time, proc) = self.queue.pop()?;
        let stream = &mut self.streams[proc as usize];
        debug_assert_eq!(stream.peek(), time);
        stream.advance();
        self.queue.push(stream.peek(), proc);
        Some(Fault { time, proc })
    }

    /// Number of processors covered.
    #[must_use]
    pub fn num_procs(&self) -> u32 {
        self.streams.len() as u32
    }
}

/// An iterator adapter over [`FaultSource`].
impl Iterator for FaultSource {
    type Item = Fault;

    fn next(&mut self) -> Option<Fault> {
        self.next_fault()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAW: FaultLaw = FaultLaw::Exponential { mtbf: 100.0 };

    #[test]
    fn stream_strictly_increasing() {
        let mut s = FaultStream::new(1, 0, LAW);
        let mut last = 0.0;
        for _ in 0..1000 {
            let t = s.advance();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn stream_policy_independent_replay() {
        let mut a = FaultStream::new(9, 4, LAW);
        let mut b = FaultStream::new(9, 4, LAW);
        for _ in 0..100 {
            assert_eq!(a.advance(), b.advance());
        }
    }

    #[test]
    fn streams_differ_per_proc() {
        let a = FaultStream::new(9, 0, LAW).advance();
        let b = FaultStream::new(9, 1, LAW).advance();
        assert_ne!(a, b);
    }

    #[test]
    fn source_yields_global_time_order() {
        let mut src = FaultSource::new(3, 16, LAW);
        let mut last = 0.0;
        for _ in 0..500 {
            let f = src.next_fault().unwrap();
            assert!(f.time >= last);
            assert!(f.proc < 16);
            last = f.time;
        }
    }

    #[test]
    fn source_matches_individual_streams() {
        // Merging must not change any per-processor trace.
        let p = 8;
        let mut src = FaultSource::new(5, p, LAW);
        let mut per_proc: Vec<Vec<f64>> = vec![Vec::new(); p as usize];
        for _ in 0..400 {
            let f = src.next_fault().unwrap();
            per_proc[f.proc as usize].push(f.time);
        }
        for k in 0..p {
            let mut s = FaultStream::new(5, k, LAW);
            for &t in &per_proc[k as usize] {
                assert_eq!(s.advance(), t, "proc {k} trace diverged");
            }
        }
    }

    #[test]
    fn adding_processors_preserves_existing_traces() {
        let mut small = FaultSource::new(7, 4, LAW);
        let mut big = FaultSource::new(7, 8, LAW);
        let mut small_faults: Vec<Fault> = Vec::new();
        for _ in 0..200 {
            small_faults.push(small.next_fault().unwrap());
        }
        let mut big_faults_on_small_procs = Vec::new();
        while big_faults_on_small_procs.len() < 200 {
            let f = big.next_fault().unwrap();
            if f.proc < 4 {
                big_faults_on_small_procs.push(f);
            }
        }
        assert_eq!(&small_faults[..], &big_faults_on_small_procs[..]);
    }

    #[test]
    fn platform_fault_rate_scales_with_p() {
        // With p processors of MTBF µ, the platform MTBF is µ/p.
        let p = 64;
        let mut src = FaultSource::new(11, p, LAW);
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = src.next_fault().unwrap().time;
        }
        let observed_mtbf = last / f64::from(n);
        let expected = 100.0 / f64::from(p);
        let rel = (observed_mtbf - expected).abs() / expected;
        assert!(rel < 0.05, "observed {observed_mtbf}, expected {expected}");
    }

    #[test]
    fn iterator_interface() {
        let src = FaultSource::new(2, 4, LAW);
        let faults: Vec<Fault> = src.take(10).collect();
        assert_eq!(faults.len(), 10);
    }
}
