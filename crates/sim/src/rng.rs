//! Deterministic pseudo-random number generation.
//!
//! The simulator requires *replayable* randomness: the fault trace of a run
//! must be a pure function of `(run_seed, processor_id)`, independent of the
//! scheduling policy under test and stable across library versions. We
//! therefore implement the generators ourselves rather than depending on an
//! external crate whose stream definition may change between releases.
//!
//! Two building blocks are provided:
//!
//! * [`SplitMix64`] — a tiny generator used to seed other generators and to
//!   derive independent *streams* from a `(seed, stream_id)` pair.
//! * [`Xoshiro256`] — xoshiro256++ by Blackman & Vigna, the workhorse
//!   generator. 256-bit state, passes BigCrush, and is trivially portable.

/// SplitMix64 (Steele, Lea, Flood 2014). Mainly used for seeding.
///
/// Every output is produced by a bijective avalanche of an incrementing
/// counter, so even seeds `0, 1, 2, …` yield decorrelated values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (all values allowed).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator through SplitMix64, as recommended by the authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros, so `s` is always valid.
        Self { s }
    }

    /// Derives an independent stream for `(seed, stream)` pairs.
    ///
    /// Used to give each simulated processor its own generator: the fault
    /// trace of processor `k` is a function of `(run_seed, k)` only.
    #[must_use]
    pub fn stream(seed: u64, stream: u64) -> Self {
        // Mix the stream id through SplitMix64 before combining so that
        // consecutive stream ids do not produce correlated seeds.
        let mixed = SplitMix64::new(stream).next_u64();
        Self::seed_from_u64(seed ^ mixed.rotate_left(17))
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result =
            (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields a value in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Useful for `ln`-based inverse-CDF sampling where an argument of zero
    /// would produce `-inf`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let s = span + 1;
        // Rejection threshold for unbiased sampling.
        let zone = u64::MAX - (u64::MAX - s + 1) % s;
        loop {
            let v = self.next_u64();
            let (hi128, _) = widening_mul(v, s);
            if v <= zone {
                return lo + hi128;
            }
        }
    }
}

/// Full 64x64 -> (high, low) multiplication.
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 computed from the published
        // SplitMix64 algorithm (verified against the C reference).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn splitmix_consecutive_seeds_decorrelated() {
        let a = SplitMix64::new(0).next_u64();
        let b = SplitMix64::new(1).next_u64();
        // Hamming distance should be substantial (avalanche property).
        let dist = (a ^ b).count_ones();
        assert!(dist > 10, "avalanche too weak: {dist} differing bits");
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent() {
        let mut s0 = Xoshiro256::stream(99, 0);
        let mut s1 = Xoshiro256::stream(99, 1);
        let same = (0..64).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_function_of_pair() {
        let mut a = Xoshiro256::stream(7, 3);
        let mut b = Xoshiro256::stream(7, 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64_open();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_inclusive_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.uniform_u64(0, 3);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn uniform_u64_degenerate_range() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        assert_eq!(rng.uniform_u64(17, 17), 17);
    }

    #[test]
    fn uniform_u64_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.uniform_u64(0, 7) as usize] += 1;
        }
        let expected = n / 8;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - f64::from(expected)).abs() / f64::from(expected);
            assert!(dev < 0.05, "bucket {i}: count {c}, deviation {dev}");
        }
    }
}
