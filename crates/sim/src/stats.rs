//! Streaming and batch statistics used by the experiment harness.

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by `n`).
    #[must_use]
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Half-width of an approximate 95 % confidence interval on the mean
    /// (normal approximation, `1.96 σ/√n`; 0 with fewer than two samples).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Summary statistics of a batch of values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

/// Computes summary statistics of a non-empty slice.
///
/// # Panics
/// Panics if `values` is empty or contains NaN.
#[must_use]
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty slice");
    let mut acc = Welford::new();
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summarize input"));
    for &v in values {
        acc.push(v);
    }
    Summary {
        count: values.len(),
        mean: acc.mean(),
        stddev: acc.stddev(),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        median: quantile_sorted(&sorted, 0.5),
    }
}

/// Quantile of a pre-sorted slice with linear interpolation.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be < hi");
        Self { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            // Guard against floating rounding at the upper edge.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Population standard deviation of a slice (used for the Fig. 9b series:
/// dispersion of per-task processor counts).
///
/// Returns 0 for slices with fewer than two elements.
#[must_use]
pub fn stddev_population(values: &[f64]) -> f64 {
    let mut acc = Welford::new();
    for &v in values {
        acc.push(v);
    }
    acc.stddev_population()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance_population() - 4.0).abs() < 1e-12);
        assert!((w.stddev_population() - 2.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let b = Welford::new();
        let mut a2 = a;
        a2.merge(&b);
        assert!((a2.mean() - a.mean()).abs() < 1e-15);
        let mut c = Welford::new();
        c.merge(&a);
        assert!((c.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn summarize_basics() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn median_interpolates_even_count() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }

    #[test]
    fn quantiles() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 50.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 30.0);
        assert!((quantile_sorted(&sorted, 0.25) - 20.0).abs() < 1e-12);
        assert!((quantile_sorted(&sorted, 0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.999, -1.0, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn stddev_population_of_constant_is_zero() {
        assert_eq!(stddev_population(&[4.0, 4.0, 4.0]), 0.0);
        assert_eq!(stddev_population(&[]), 0.0);
        assert_eq!(stddev_population(&[1.0]), 0.0);
    }
}
