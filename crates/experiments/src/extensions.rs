//! Extension experiments beyond the paper's figures (all flagged as such
//! in DESIGN.md §6):
//!
//! * [`validation_table`] — Monte-Carlo validation of the expected-time
//!   formula (Eq. 4) against a physical single-task simulation;
//! * [`ablation_table`] — sensitivity of the headline result to the
//!   pseudocode ambiguities we had to resolve (end semantics, faulty-task
//!   cost bias, checkpoint-period rule) and to the fault law (Weibull);
//! * [`gap_table`] — optimality gap of the heuristics on instances small
//!   enough for the exact end-redistribution solver (§4.2's NP-complete
//!   problem, solved by brute force).

use std::sync::Arc;

use redistrib_core::exact::optimal_with_end_redistribution;
use redistrib_core::{run, EngineConfig, FaultConfig, Heuristic, ScheduleError};
use redistrib_model::montecarlo::validate_expected_time;
use redistrib_model::silent::{validate_silent, SilentConfig, SilentParams};
use redistrib_model::{
    AllocParams, EndSemantics, PaperModel, PeriodRule, Platform, SpeedupModel, TaskSpec,
    TimeCalc, Workload,
};
use redistrib_sim::dist::FaultLaw;
use redistrib_sim::stats::Welford;
use redistrib_sim::units;

use crate::runner::{run_point, PointConfig, Variant};
use crate::table::{fmt_num, fmt_ratio, Table};
use crate::workload::{generate, WorkloadParams};

/// Eq. 4 validation: predicted vs. measured completion time across
/// allocations, MTBFs and work fractions.
#[must_use]
pub fn validation_table(runs: u32, seed: u64) -> Table {
    let mut table = Table::new(
        "Extension — Monte-Carlo validation of Eq. 4 (task of size 2e6, c = 1)",
        vec![
            "j (procs)".into(),
            "MTBF (years)".into(),
            "α".into(),
            "predicted t^R (s)".into(),
            "measured mean (s)".into(),
            "rel. error (%)".into(),
        ],
    );
    let task = TaskSpec::new(2.0e6);
    let model = PaperModel::default();
    for &(j, mtbf, alpha) in &[
        (10u32, 100.0, 1.0),
        (10, 100.0, 0.5),
        (50, 100.0, 1.0),
        (10, 20.0, 1.0),
        (50, 20.0, 1.0),
        (100, 5.0, 1.0),
    ] {
        let platform = Platform::with_mtbf(5000, units::years(mtbf));
        let t_ff = model.time(task.size, j);
        let params = AllocParams::compute(&task, &platform, t_ff, j, PeriodRule::Young);
        let v = validate_expected_time(&params, platform.downtime, alpha, runs, seed);
        table.push_row(vec![
            j.to_string(),
            fmt_num(mtbf),
            fmt_num(alpha),
            fmt_num(v.predicted),
            fmt_num(v.measured_mean),
            format!("{:+.2}", 100.0 * v.relative_error),
        ]);
    }
    table
}

/// One engine configuration of the ablation study.
struct AblationArm {
    name: &'static str,
    end_semantics: EndSemantics,
    period_rule: PeriodRule,
    bias: bool,
    law: fn(f64) -> FaultLaw,
}

/// Ablation study: normalized IG-EL makespan under each resolved-ambiguity
/// variant, same workloads and fault seeds.
///
/// # Errors
/// Propagates engine errors.
pub fn ablation_table(runs: usize, seed: u64) -> Result<Table, ScheduleError> {
    let arms = [
        AblationArm {
            name: "paper defaults (Expected, Young, text §3.3.2)",
            end_semantics: EndSemantics::Expected,
            period_rule: PeriodRule::Young,
            bias: false,
            law: |mtbf| FaultLaw::Exponential { mtbf },
        },
        AblationArm {
            name: "pseudocode fault bias (Alg. 4/5 literal)",
            end_semantics: EndSemantics::Expected,
            period_rule: PeriodRule::Young,
            bias: true,
            law: |mtbf| FaultLaw::Exponential { mtbf },
        },
        AblationArm {
            name: "fault-free-projection end semantics",
            end_semantics: EndSemantics::FaultFreeProjection,
            period_rule: PeriodRule::Young,
            bias: false,
            law: |mtbf| FaultLaw::Exponential { mtbf },
        },
        AblationArm {
            name: "Daly checkpoint period",
            end_semantics: EndSemantics::Expected,
            period_rule: PeriodRule::Daly,
            bias: false,
            law: |mtbf| FaultLaw::Exponential { mtbf },
        },
        AblationArm {
            name: "Weibull faults (shape 0.7)",
            end_semantics: EndSemantics::Expected,
            period_rule: PeriodRule::Young,
            bias: false,
            law: |mtbf| FaultLaw::Weibull { shape: 0.7, mtbf },
        },
    ];

    let wl = WorkloadParams { m_inf: 2.0e5, m_sup: 5.0e5, ..WorkloadParams::paper_default(20) };
    let platform = Platform::with_mtbf(200, units::years(3.0));
    let heuristic = Heuristic::IteratedGreedyEndLocal;

    let mut table = Table::new(
        "Extension — ablation of resolved ambiguities (n = 20, p = 200, MTBF 3 y, IG-EL)",
        vec![
            "variant".into(),
            "normalized makespan".into(),
            "mean faults".into(),
            "mean redistributions".into(),
        ],
    );
    for arm in &arms {
        let mut ratio = Welford::new();
        let mut faults = Welford::new();
        let mut rcs = Welford::new();
        for r in 0..runs {
            let (wseed, fseed) = crate::runner::run_seeds(seed, r);
            let workload = generate(&wl, wseed);
            let base = run_arm(&workload, platform, arm, fseed, Heuristic::NoRedistribution)?;
            let out = run_arm(&workload, platform, arm, fseed, heuristic)?;
            ratio.push(out.makespan / base.makespan);
            faults.push(out.handled_faults as f64);
            rcs.push(out.redistributions as f64);
        }
        table.push_row(vec![
            arm.name.into(),
            fmt_ratio(ratio.mean()),
            fmt_num(faults.mean()),
            fmt_num(rcs.mean()),
        ]);
    }
    Ok(table)
}

fn run_arm(
    workload: &Workload,
    platform: Platform,
    arm: &AblationArm,
    fault_seed: u64,
    heuristic: Heuristic,
) -> Result<redistrib_core::RunOutcome, ScheduleError> {
    let calc = TimeCalc::new(workload.clone(), platform)
        .with_end_semantics(arm.end_semantics)
        .with_period_rule(arm.period_rule);
    let cfg = EngineConfig {
        faults: Some(FaultConfig { seed: fault_seed, law: (arm.law)(platform.proc_mtbf) }),
        pseudocode_fault_bias: arm.bias,
        ..EngineConfig::fault_free()
    };
    run(&calc, &*heuristic.end_policy(), &*heuristic.fault_policy(), &cfg)
}

/// Optimality gap: fault-free heuristic makespans vs. the exact
/// end-redistribution optimum on 3-task instances (the NP-complete problem
/// of Theorem 2 is brute-forced).
///
/// # Errors
/// Propagates engine errors.
pub fn gap_table(instances: usize, seed: u64) -> Result<Table, ScheduleError> {
    let mut table = Table::new(
        "Extension — optimality gap on small instances (n = 3, p = 10, fault-free)",
        vec![
            "instance".into(),
            "exact optimum (s)".into(),
            "EndLocal / opt".into(),
            "EndGreedy / opt".into(),
            "no-RC / opt".into(),
        ],
    );
    let p = 10u32;
    for k in 0..instances {
        let (wseed, _) = crate::runner::run_seeds(seed, k);
        let wl = WorkloadParams {
            n: 3,
            m_inf: 1.0e5,
            m_sup: 5.0e5,
            ..WorkloadParams::paper_default(3)
        };
        let workload = generate(&wl, wseed);
        let platform = Platform::new(p);
        let mut calc = TimeCalc::fault_free(workload.clone(), platform);
        let exact = optimal_with_end_redistribution(&mut calc, p, true)?;

        let mut row = vec![format!("#{k}"), fmt_num(exact.makespan)];
        for h in
            [Heuristic::EndLocalOnly, Heuristic::EndGreedyOnly, Heuristic::NoRedistribution]
        {
            let calc = TimeCalc::fault_free(workload.clone(), platform);
            let out =
                run(&calc, &*h.end_policy(), &*h.fault_policy(), &EngineConfig::fault_free())?;
            row.push(fmt_ratio(out.makespan / exact.makespan));
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Silent-error study (§7 future work): expected-time inflation and
/// threshold shift for one task across silent-error rates, with Monte-Carlo
/// cross-checks of the closed form.
#[must_use]
pub fn silent_table(runs: u32, seed: u64) -> Table {
    let mut table = Table::new(
        "Extension — silent errors with verification (task 2e6, fail-stop MTBF 50 y, v = 0.05)",
        vec![
            "silent MTBF (years)".into(),
            "best j".into(),
            "t^R at best j (s)".into(),
            "inflation vs fail-stop only".into(),
            "MC rel. error (%)".into(),
        ],
    );
    let task = TaskSpec::new(2.0e6);
    let model = PaperModel::default();
    let platform = Platform::with_mtbf(5000, units::years(50.0));

    let params_for = |j: u32, silent_mtbf_years: f64| -> SilentParams {
        let t_ff = model.time(task.size, j);
        let base = AllocParams::compute(&task, &platform, t_ff, j, PeriodRule::Young);
        let lam =
            if silent_mtbf_years == 0.0 { 0.0 } else { 1.0 / units::years(silent_mtbf_years) };
        SilentParams::new(base, &SilentConfig::new(lam, 0.05), task.size, j, platform.downtime)
    };
    let best = |silent_mtbf_years: f64| -> (u32, f64) {
        let mut best = (2u32, f64::INFINITY);
        for j in (2..=400).step_by(2) {
            let t = params_for(j, silent_mtbf_years).expected_time(1.0);
            if t < best.1 {
                best = (j, t);
            }
        }
        best
    };

    let (_, baseline_t) = best(0.0);
    for &silent_mtbf in &[0.0, 100.0, 20.0, 5.0] {
        let (j, t) = best(silent_mtbf);
        let err = if silent_mtbf == 0.0 {
            0.0
        } else {
            100.0 * validate_silent(&params_for(j, silent_mtbf), 1.0, runs, seed).relative_error
        };
        table.push_row(vec![
            if silent_mtbf == 0.0 {
                "∞ (fail-stop only)".into()
            } else {
                fmt_num(silent_mtbf)
            },
            j.to_string(),
            fmt_num(t),
            fmt_ratio(t / baseline_t),
            format!("{err:+.2}"),
        ]);
    }
    table
}

/// Warm-greedy fidelity: the opt-in approximate [`Heuristic::WarmGreedy`]
/// rebuild (resume from the committed allocation, grow-only, no reset)
/// measured against the exact Algorithm 5 combinations on a storm-grade
/// fault point — the "explicitly approximate variant measured against the
/// exact one" of the incremental-greedy ROADMAP item. Makespans are
/// normalized per fault trace by the no-redistribution baseline, so a
/// ratio above an exact combination's is the price of skipping the reset
/// (chiefly: no stealing from short tasks at faults).
///
/// # Errors
/// Propagates engine errors.
pub fn warm_table(runs: usize, seed: u64) -> Result<Table, ScheduleError> {
    let cfg = PointConfig {
        workload: WorkloadParams::paper_default(30),
        p: 150,
        mtbf_years: 3.0,
        downtime: 60.0,
        runs,
        base_seed: 0xAC1D ^ seed,
    };
    let variants = [
        Variant::Fault(Heuristic::IteratedGreedyEndGreedy),
        Variant::Fault(Heuristic::IteratedGreedyEndLocal),
        Variant::Fault(Heuristic::ShortestTasksFirstEndGreedy),
        Variant::Fault(Heuristic::WarmGreedy),
    ];
    let stats = run_point(&cfg, Variant::FaultNoRc, &variants)?;
    let mut table = Table::new(
        format!(
            "Extension — approximate WarmGreedy vs exact Algorithm 5 \
             (n = 30, p = 150, MTBF 3 y, {runs} runs)"
        ),
        vec![
            "heuristic".into(),
            "normalized makespan".into(),
            "±95% CI".into(),
            "mean faults".into(),
            "mean redistributions".into(),
        ],
    );
    for s in &stats {
        table.push_row(vec![
            s.variant.label(),
            fmt_ratio(s.mean_ratio),
            fmt_ratio(s.ci95),
            fmt_num(s.mean_faults),
            fmt_num(s.mean_redistributions),
        ]);
    }
    Ok(table)
}

/// A tiny speedup-model comparison: the same pack under Eq. 10, Amdahl and
/// power-law profiles, showing the API is profile-agnostic.
///
/// # Errors
/// Propagates engine errors.
pub fn profiles_table(seed: u64) -> Result<Table, ScheduleError> {
    let mut table = Table::new(
        "Extension — speedup-profile sweep (n = 12, p = 96, MTBF 3 y, IG-EL vs no-RC)",
        vec!["profile".into(), "normalized makespan".into()],
    );
    let profiles: Vec<(&str, Arc<dyn SpeedupModel>)> = vec![
        ("paper Eq. 10 (f = 0.08)", Arc::new(PaperModel::default())),
        ("Amdahl (f = 0.08)", Arc::new(redistrib_model::Amdahl::new(0.08))),
        ("power law (e = 0.8)", Arc::new(redistrib_model::PowerLaw::new(0.8))),
    ];
    let platform = Platform::with_mtbf(96, units::years(3.0));
    for (name, model) in profiles {
        let mut rng = redistrib_sim::rng::Xoshiro256::seed_from_u64(seed);
        let tasks: Vec<TaskSpec> =
            (0..12).map(|_| TaskSpec::new(rng.uniform(2.0e5, 5.0e5))).collect();
        let workload = Workload::new(tasks, model);
        let cfg = EngineConfig::with_faults(seed, platform.proc_mtbf);
        let base_calc = TimeCalc::new(workload.clone(), platform);
        let h0 = Heuristic::NoRedistribution;
        let base = run(&base_calc, &*h0.end_policy(), &*h0.fault_policy(), &cfg)?;
        let h = Heuristic::IteratedGreedyEndLocal;
        let calc = TimeCalc::new(workload, platform);
        let out = run(&calc, &*h.end_policy(), &*h.fault_policy(), &cfg)?;
        table.push_row(vec![name.into(), fmt_ratio(out.makespan / base.makespan)]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_table_small() {
        let t = validation_table(60, 3);
        assert_eq!(t.rows.len(), 6);
        // Every relative error within ±10 % at these sample sizes.
        for row in &t.rows {
            let err: f64 = row[5].parse().unwrap();
            assert!(err.abs() < 10.0, "row {row:?}");
        }
    }

    #[test]
    fn ablation_table_runs() {
        let t = ablation_table(3, 5).unwrap();
        assert_eq!(t.rows.len(), 5);
        // The paper-default arm shows a gain.
        let default_ratio: f64 = t.rows[0][1].parse().unwrap();
        assert!(default_ratio < 1.05, "default ratio {default_ratio}");
    }

    #[test]
    fn gap_table_heuristics_close_to_optimal() {
        let t = gap_table(4, 11).unwrap();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let local: f64 = row[2].parse().unwrap();
            let greedy: f64 = row[3].parse().unwrap();
            let norc: f64 = row[4].parse().unwrap();
            assert!(local >= 1.0 - 1e-9 && greedy >= 1.0 - 1e-9 && norc >= 1.0 - 1e-9);
            assert!(local < 1.5 && greedy < 1.5, "heuristics should be near-optimal");
            assert!(norc >= local - 1e-9, "redistribution should not lose to no-RC");
        }
    }

    #[test]
    fn silent_table_shape() {
        let t = silent_table(60, 9);
        assert_eq!(t.rows.len(), 4);
        // Inflation grows as the silent MTBF shrinks.
        let infl: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(infl.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{infl:?}");
        // MC errors small.
        for row in &t.rows[1..] {
            let e: f64 = row[4].parse().unwrap();
            assert!(e.abs() < 12.0, "row {row:?}");
        }
    }

    #[test]
    fn profiles_table_runs() {
        let t = profiles_table(7).unwrap();
        assert_eq!(t.rows.len(), 3);
    }
}
