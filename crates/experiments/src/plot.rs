//! Terminal line charts for result tables.
//!
//! Renders a [`Table`] whose first column is a numeric sweep variable and
//! whose remaining columns are series, as a fixed-size character grid with
//! one glyph per series — a terminal stand-in for the paper's plots.

use crate::table::Table;

/// Glyphs assigned to series, in column order.
const GLYPHS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];

/// Chart dimensions.
#[derive(Debug, Clone, Copy)]
pub struct PlotSize {
    /// Grid width in characters (data area).
    pub width: usize,
    /// Grid height in characters (data area).
    pub height: usize,
}

impl Default for PlotSize {
    fn default() -> Self {
        Self { width: 64, height: 16 }
    }
}

/// Renders the table as an ASCII chart.
///
/// Non-numeric cells are skipped. Returns `None` when the table has fewer
/// than two numeric rows or no series column.
#[must_use]
pub fn render(table: &Table, size: PlotSize) -> Option<String> {
    let series_count = table.headers.len().checked_sub(1)?;
    if series_count == 0 {
        return None;
    }

    // Parse rows: x plus one optional y per series.
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<Vec<Option<f64>>> = vec![Vec::new(); series_count];
    for row in &table.rows {
        let Ok(x) = row[0].parse::<f64>() else { continue };
        xs.push(x);
        for (s, cell) in row[1..].iter().enumerate() {
            ys[s].push(cell.parse::<f64>().ok());
        }
    }
    if xs.len() < 2 {
        return None;
    }

    let (x_min, x_max) = min_max(xs.iter().copied())?;
    let (y_min, y_max) = min_max(ys.iter().flatten().filter_map(|v| *v))?;
    let y_pad = ((y_max - y_min) * 0.05).max(1e-12);
    let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);

    let mut grid = vec![vec![' '; size.width]; size.height];
    for (s, series) in ys.iter().enumerate() {
        let glyph = GLYPHS[s % GLYPHS.len()];
        for (&x, y) in xs.iter().zip(series) {
            let Some(y) = *y else { continue };
            let col = scale(x, x_min, x_max, size.width);
            let row = size.height - 1 - scale(y, y_lo, y_hi, size.height);
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{}\n", table.title));
    for (r, line) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_hi:>9.3}")
        } else if r == size.height - 1 {
            format!("{y_lo:>9.3}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push_str(" +");
    out.push_str(&"-".repeat(size.width));
    out.push('\n');
    out.push_str(&format!(
        "{} {:<w$.3} {:>r$.3}\n",
        " ".repeat(9),
        x_min,
        x_max,
        w = size.width / 2,
        r = size.width / 2
    ));
    for (s, header) in table.headers[1..].iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[s % GLYPHS.len()], header));
    }
    Some(out)
}

fn min_max(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() && hi.is_finite() {
        Some(if lo == hi { (lo - 0.5, hi + 0.5) } else { (lo, hi) })
    } else {
        None
    }
}

/// Maps `v ∈ [lo, hi]` onto `0..cells`.
fn scale(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t =
            Table::new("Test figure", vec!["p".into(), "baseline".into(), "heuristic".into()]);
        for (x, a, b) in [(200, 1.0, 0.8), (400, 1.0, 0.85), (800, 1.0, 0.95)] {
            t.push_row(vec![x.to_string(), format!("{a:.3}"), format!("{b:.3}")]);
        }
        t
    }

    #[test]
    fn renders_with_legend_and_axes() {
        let chart = render(&table(), PlotSize::default()).unwrap();
        assert!(chart.contains("Test figure"));
        assert!(chart.contains("o baseline"));
        assert!(chart.contains("+ heuristic"));
        assert!(chart.contains('|'));
        assert!(chart.contains('+'));
        // Both glyphs appear in the data area.
        assert!(chart.matches('o').count() >= 1);
        assert!(chart.matches('+').count() >= 2);
    }

    #[test]
    fn respects_size() {
        let size = PlotSize { width: 30, height: 8 };
        let chart = render(&table(), size).unwrap();
        let data_lines: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(data_lines.len(), 8);
        for l in data_lines {
            assert!(l.len() <= 9 + 2 + 30);
        }
    }

    #[test]
    fn rejects_non_numeric_tables() {
        let mut t = Table::new("text", vec!["a".into(), "b".into()]);
        t.push_row(vec!["hello".into(), "world".into()]);
        assert!(render(&t, PlotSize::default()).is_none());
    }

    #[test]
    fn rejects_single_row() {
        let mut t = Table::new("one", vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert!(render(&t, PlotSize::default()).is_none());
    }

    #[test]
    fn handles_flat_series() {
        let mut t = Table::new("flat", vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "5".into()]);
        t.push_row(vec!["2".into(), "5".into()]);
        let chart = render(&t, PlotSize::default()).unwrap();
        assert!(chart.contains('o'));
    }

    #[test]
    fn skips_unparsable_cells_but_keeps_series() {
        let mut t = Table::new("gaps", vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "0.5".into()]);
        t.push_row(vec!["2".into(), "n/a".into()]);
        t.push_row(vec!["3".into(), "0.7".into()]);
        let chart = render(&t, PlotSize::default()).unwrap();
        assert_eq!(chart.matches('o').count(), 2 + 1); // 2 points + legend
    }
}
