//! Table 1 of the paper: notation and default simulation parameters.

use crate::table::Table;

/// Renders the notation table (Table 1) together with the default values
/// used by the simulation harness (§6.1).
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 — notation and simulation defaults",
        vec!["symbol".into(), "meaning".into(), "default".into()],
    );
    let rows: [(&str, &str, &str); 14] = [
        ("n", "number of tasks in the pack", "100"),
        ("p", "total number of processors", "1000"),
        ("µ", "MTBF of one processor", "100 years"),
        ("λ", "exponential fault rate, 1/µ", "derived"),
        ("D", "downtime after a failure", "60 s"),
        ("m_i", "data size of task T_i", "U[1.5e6, 2.5e6]"),
        ("t_{i,j}", "fault-free time of T_i on j processors", "Eq. 10, f = 0.08"),
        ("c", "checkpoint time per data unit", "1"),
        ("C_{i,j}", "checkpoint cost, c·m_i/j", "derived"),
        ("R_{i,j}", "recovery cost, = C_{i,j}", "derived"),
        ("τ_{i,j}", "checkpoint period (Young)", "Eq. 1"),
        ("σ(i)", "processors allocated to T_i (even)", "Algorithm 1"),
        ("α_i", "remaining fraction of work of T_i", "1 at start"),
        ("x", "runs averaged per configuration", "50"),
    ];
    for (s, m, d) in rows {
        t.push_row(vec![s.into(), m.into(), d.into()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders() {
        let t = table1();
        assert_eq!(t.rows.len(), 14);
        let md = t.to_markdown();
        assert!(md.contains("MTBF of one processor"));
        assert!(md.contains("Eq. 10"));
    }
}
