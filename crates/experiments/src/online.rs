//! Online co-scheduling campaigns.
//!
//! Applies the §6.2 multi-run methodology to the *online* workload class:
//! every configuration point is executed `runs` times (fresh job stream and
//! fault trace per run, derived from the base seed exactly like the static
//! runner); each strategy's mean stretch and makespan are normalized by the
//! no-resize baseline *on the same arrival + fault trace*; normalized
//! ratios are averaged across runs with 95 % confidence intervals.

use redistrib_core::{Heuristic, ScheduleError};
use redistrib_model::{JobSpec, PaperModel, Platform};
use redistrib_online::{
    generate_jobs, parse_swf, swf_jobs, JobSizeModel, OnlineConfig, OnlineOutcome,
    OnlineStrategy, PoissonArrivals, Scheduler, SwfMapping,
};
use redistrib_sim::stats::Welford;
use redistrib_sim::units;

use crate::runner::{run_seeds, stream_runs};
use crate::table::{fmt_num, fmt_ratio, Table};

/// One fully resolved online configuration point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePointConfig {
    /// Number of jobs per run.
    pub jobs: usize,
    /// Mean inter-arrival time of the Poisson job stream (seconds).
    pub mean_interarrival: f64,
    /// Job-size distribution.
    pub sizes: JobSizeModel,
    /// Sequential fraction `f` of the Eq. 10 speedup profile.
    pub seq_fraction: f64,
    /// Platform size `p`.
    pub p: u32,
    /// Per-processor MTBF in years.
    pub mtbf_years: f64,
    /// Number of runs to average.
    pub runs: usize,
    /// Base seed; run `r` derives its job-stream and fault seeds from
    /// `(base_seed, r)` (same derivation as the static runner).
    pub base_seed: u64,
}

impl OnlinePointConfig {
    /// Default campaign point: 40 jobs arriving every ~2 000 s on 64
    /// processors with a 40-year MTBF, 20 runs.
    #[must_use]
    pub fn default_point() -> Self {
        Self {
            jobs: 40,
            mean_interarrival: 2_000.0,
            sizes: JobSizeModel::paper_default(),
            seq_fraction: PaperModel::DEFAULT_SEQ_FRACTION,
            p: 64,
            mtbf_years: 40.0,
            runs: 20,
            base_seed: 0x0511_11E5,
        }
    }

    fn platform(&self) -> Platform {
        Platform::with_mtbf(self.p, units::years(self.mtbf_years))
    }

    fn job_stream(&self, seed: u64) -> Vec<JobSpec> {
        let mut arrivals = PoissonArrivals::new(seed, self.mean_interarrival);
        generate_jobs(&mut arrivals, self.jobs, &self.sizes, seed)
    }
}

/// Aggregated statistics of one strategy at one online point.
#[derive(Debug, Clone)]
pub struct OnlineVariantStats {
    /// Strategy display name.
    pub name: String,
    /// Mean of per-run `mean_stretch / baseline mean_stretch`.
    pub stretch_ratio: f64,
    /// 95 % CI half-width of the stretch ratio.
    pub ci95: f64,
    /// Mean of per-run mean stretches (unnormalized).
    pub mean_stretch: f64,
    /// Mean of per-run `makespan / baseline makespan`.
    pub makespan_ratio: f64,
    /// Mean processor utilization.
    pub mean_utilization: f64,
    /// Mean committed reallocations per run.
    pub mean_redistributions: f64,
}

/// The strategies of the default online campaign: the no-resize baseline
/// plus the four fault-context heuristic combinations with arrival
/// rebalancing.
#[must_use]
pub fn campaign_strategies() -> Vec<OnlineStrategy> {
    let mut v = vec![OnlineStrategy::no_resize()];
    v.extend(Heuristic::FAULT_COMBINATIONS.map(OnlineStrategy::resizing));
    v
}

/// Executes one strategy on one prepared run through the session builder.
fn execute(
    cfg: &OnlinePointConfig,
    jobs: &[JobSpec],
    fault_seed: u64,
    strategy: &OnlineStrategy,
) -> Result<OnlineOutcome, ScheduleError> {
    let platform = cfg.platform();
    Scheduler::on(platform)
        .speedup(std::sync::Arc::new(PaperModel::new(cfg.seq_fraction)))
        .strategy(*strategy)
        .config(OnlineConfig::with_faults(fault_seed, platform.proc_mtbf))
        .run(jobs)
}

/// Per-strategy reduction of one run: `(mean_stretch, makespan,
/// utilization, redistributions)` — all a campaign keeps per run.
struct RunRow {
    baseline_stretch: f64,
    baseline_makespan: f64,
    rows: Vec<(f64, f64, f64, f64)>,
}

/// Runs every strategy at `cfg`, normalizing per run by the no-resize
/// baseline, and streams per-run reductions into [`Welford`] aggregators
/// as runs finish (work-stealing workers, in-run-order aggregation — see
/// `runner::stream_runs`). Deterministic across invocations and thread
/// counts.
///
/// # Errors
/// Propagates the engine error of the lowest-indexed failing run.
pub fn run_online_point(
    cfg: &OnlinePointConfig,
    strategies: &[OnlineStrategy],
) -> Result<Vec<OnlineVariantStats>, ScheduleError> {
    let baseline = OnlineStrategy::no_resize();
    let mut acc: Vec<(Welford, Welford, Welford, Welford, Welford)> =
        vec![Default::default(); strategies.len()];
    stream_runs(
        cfg.runs,
        |r| {
            let (job_seed, fault_seed) = run_seeds(cfg.base_seed, r);
            let jobs = cfg.job_stream(job_seed);
            let base = execute(cfg, &jobs, fault_seed, &baseline)?;
            let reduce = |out: &OnlineOutcome| {
                (
                    out.metrics.mean_stretch,
                    out.makespan,
                    out.metrics.utilization,
                    out.redistributions as f64,
                )
            };
            let mut rows = Vec::with_capacity(strategies.len());
            for s in strategies {
                if *s == baseline {
                    rows.push(reduce(&base));
                } else {
                    rows.push(reduce(&execute(cfg, &jobs, fault_seed, s)?));
                }
            }
            Ok(RunRow {
                baseline_stretch: base.metrics.mean_stretch,
                baseline_makespan: base.makespan,
                rows,
            })
        },
        |_, row: RunRow| {
            for (v, &(stretch, mk, util, rc)) in row.rows.iter().enumerate() {
                acc[v].0.push(stretch / row.baseline_stretch);
                acc[v].1.push(stretch);
                acc[v].2.push(mk / row.baseline_makespan);
                acc[v].3.push(util);
                acc[v].4.push(rc);
            }
        },
    )?;
    Ok(strategies
        .iter()
        .zip(acc)
        .map(|(s, (ratio, stretch, mk, util, rc))| OnlineVariantStats {
            name: s.name(),
            stretch_ratio: ratio.mean(),
            ci95: ratio.ci95_half_width(),
            mean_stretch: stretch.mean(),
            makespan_ratio: mk.mean(),
            mean_utilization: util.mean(),
            mean_redistributions: rc.mean(),
        })
        .collect())
}

/// Renders campaign statistics as a table.
#[must_use]
pub fn online_table(cfg: &OnlinePointConfig, stats: &[OnlineVariantStats]) -> Table {
    let mut table = Table::new(
        format!(
            "Online campaign: {} jobs, 1/λ = {} s, p = {}, MTBF = {} y, {} runs",
            cfg.jobs, cfg.mean_interarrival, cfg.p, cfg.mtbf_years, cfg.runs
        ),
        vec![
            "strategy".into(),
            "stretch ratio".into(),
            "±95% CI".into(),
            "mean stretch".into(),
            "makespan ratio".into(),
            "utilization".into(),
            "redistributions".into(),
        ],
    );
    for s in stats {
        table.push_row(vec![
            s.name.clone(),
            fmt_ratio(s.stretch_ratio),
            fmt_ratio(s.ci95),
            fmt_num(s.mean_stretch),
            fmt_ratio(s.makespan_ratio),
            fmt_ratio(s.mean_utilization),
            fmt_num(s.mean_redistributions),
        ]);
    }
    table
}

/// The `online` CLI target: runs the default campaign (scaled down in quick
/// mode) and renders its table.
///
/// # Errors
/// Propagates engine errors.
pub fn campaign_table(
    quick: bool,
    runs: Option<usize>,
    seed: u64,
) -> Result<Table, ScheduleError> {
    let mut cfg = OnlinePointConfig::default_point();
    cfg.base_seed ^= seed;
    if quick {
        cfg.jobs = 12;
        cfg.runs = 4;
        cfg.p = 32;
    }
    if let Some(r) = runs {
        cfg.runs = r.max(1);
    }
    let stats = run_online_point(&cfg, &campaign_strategies())?;
    Ok(online_table(&cfg, &stats))
}

/// Configuration of an SWF-replay campaign: one real scheduler log (the
/// Parallel Workloads Archive format), replayed through the Session API
/// under `runs` independent fault traces per strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfCampaignConfig {
    /// Platform size `p`.
    pub p: u32,
    /// Per-processor MTBF in years.
    pub mtbf_years: f64,
    /// Number of fault traces to average (the job stream is the log and
    /// never resampled).
    pub runs: usize,
    /// Base seed; run `r` derives its fault seed exactly like the static
    /// runner.
    pub base_seed: u64,
    /// How logged processor-seconds become paper-model job sizes.
    pub mapping: SwfMapping,
}

impl SwfCampaignConfig {
    /// Default replay point: 128 processors, 25-year MTBF, 8 fault traces.
    #[must_use]
    pub fn default_point() -> Self {
        Self {
            p: 128,
            mtbf_years: 25.0,
            runs: 8,
            base_seed: 0x5F_F00D,
            mapping: SwfMapping::default(),
        }
    }
}

/// Replays one SWF log under every strategy, normalizing per fault trace by
/// the no-resize baseline — the same §6.2 methodology as
/// [`run_online_point`], with the arrival stream pinned to the log instead
/// of resampled.
///
/// # Errors
/// Propagates the engine error of the lowest-indexed failing run.
///
/// # Panics
/// Panics if the log contains no usable job.
pub fn run_swf_point(
    jobs: &[JobSpec],
    cfg: &SwfCampaignConfig,
    strategies: &[OnlineStrategy],
) -> Result<Vec<OnlineVariantStats>, ScheduleError> {
    let platform = Platform::with_mtbf(cfg.p, units::years(cfg.mtbf_years));
    let baseline = OnlineStrategy::no_resize();
    let execute = |fault_seed: u64, s: &OnlineStrategy| {
        Scheduler::on(platform)
            .speedup(std::sync::Arc::new(PaperModel::default()))
            .strategy(*s)
            .config(OnlineConfig::with_faults(fault_seed, platform.proc_mtbf))
            .run(jobs)
    };
    let mut acc: Vec<(Welford, Welford, Welford, Welford, Welford)> =
        vec![Default::default(); strategies.len()];
    stream_runs(
        cfg.runs,
        |r| {
            let (_, fault_seed) = run_seeds(cfg.base_seed, r);
            let base = execute(fault_seed, &baseline)?;
            let reduce = |out: &OnlineOutcome| {
                (
                    out.metrics.mean_stretch,
                    out.makespan,
                    out.metrics.utilization,
                    out.redistributions as f64,
                )
            };
            let mut rows = Vec::with_capacity(strategies.len());
            for s in strategies {
                if *s == baseline {
                    rows.push(reduce(&base));
                } else {
                    rows.push(reduce(&execute(fault_seed, s)?));
                }
            }
            Ok(RunRow {
                baseline_stretch: base.metrics.mean_stretch,
                baseline_makespan: base.makespan,
                rows,
            })
        },
        |_, row: RunRow| {
            for (v, &(stretch, mk, util, rc)) in row.rows.iter().enumerate() {
                acc[v].0.push(stretch / row.baseline_stretch);
                acc[v].1.push(stretch);
                acc[v].2.push(mk / row.baseline_makespan);
                acc[v].3.push(util);
                acc[v].4.push(rc);
            }
        },
    )?;
    Ok(strategies
        .iter()
        .zip(acc)
        .map(|(s, (ratio, stretch, mk, util, rc))| OnlineVariantStats {
            name: s.name(),
            stretch_ratio: ratio.mean(),
            ci95: ratio.ci95_half_width(),
            mean_stretch: stretch.mean(),
            makespan_ratio: mk.mean(),
            mean_utilization: util.mean(),
            mean_redistributions: rc.mean(),
        })
        .collect())
}

/// The `swf` CLI target: parses an SWF log and replays it under the
/// default strategy grid plus the approximate `WarmGreedy` variant,
/// rendering the campaign table.
///
/// # Errors
/// A rendered message on malformed logs (`SwfError`) or engine failures.
pub fn swf_campaign_table(
    swf_text: &str,
    label: &str,
    runs: Option<usize>,
    seed: u64,
) -> Result<Table, String> {
    let records = parse_swf(swf_text).map_err(|e| format!("{label}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{label}: no usable job records"));
    }
    let mut cfg = SwfCampaignConfig::default_point();
    cfg.base_seed ^= seed;
    if let Some(r) = runs {
        cfg.runs = r.max(1);
    }
    let jobs = swf_jobs(&records, &cfg.mapping);
    let mut strategies = campaign_strategies();
    strategies.push(OnlineStrategy::resizing(Heuristic::WarmGreedy));
    let stats = run_swf_point(&jobs, &cfg, &strategies).map_err(|e| e.to_string())?;
    let mut table = Table::new(
        format!(
            "SWF replay: {label}, p = {}, MTBF = {} y, {} fault traces",
            cfg.p, cfg.mtbf_years, cfg.runs
        ),
        vec![
            "strategy".into(),
            "stretch ratio".into(),
            "±95% CI".into(),
            "mean stretch".into(),
            "makespan ratio".into(),
            "utilization".into(),
            "redistributions".into(),
        ],
    );
    for s in &stats {
        table.push_row(vec![
            s.name.clone(),
            fmt_ratio(s.stretch_ratio),
            fmt_ratio(s.ci95),
            fmt_num(s.mean_stretch),
            fmt_ratio(s.makespan_ratio),
            fmt_ratio(s.mean_utilization),
            fmt_num(s.mean_redistributions),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OnlinePointConfig {
        OnlinePointConfig {
            jobs: 6,
            mean_interarrival: 10_000.0,
            sizes: JobSizeModel::paper_default(),
            seq_fraction: PaperModel::DEFAULT_SEQ_FRACTION,
            p: 24,
            mtbf_years: 10.0,
            runs: 3,
            base_seed: 99,
        }
    }

    #[test]
    fn baseline_ratio_is_one() {
        let stats = run_online_point(&tiny(), &[OnlineStrategy::no_resize()]).unwrap();
        assert!((stats[0].stretch_ratio - 1.0).abs() < 1e-12);
        assert_eq!(stats[0].ci95, 0.0);
    }

    #[test]
    fn resizing_not_much_worse_than_baseline() {
        let stats = run_online_point(
            &tiny(),
            &[
                OnlineStrategy::no_resize(),
                OnlineStrategy::resizing(Heuristic::IteratedGreedyEndLocal),
            ],
        )
        .unwrap();
        assert!(stats[1].stretch_ratio < 1.1, "IG stretch ratio {}", stats[1].stretch_ratio);
        assert!(stats[1].mean_redistributions > 0.0);
    }

    #[test]
    fn deterministic_across_invocations() {
        let strategies = [OnlineStrategy::resizing(Heuristic::ShortestTasksFirstEndLocal)];
        let a = run_online_point(&tiny(), &strategies).unwrap();
        let b = run_online_point(&tiny(), &strategies).unwrap();
        assert_eq!(a[0].stretch_ratio, b[0].stretch_ratio);
        assert_eq!(a[0].mean_utilization, b[0].mean_utilization);
    }

    #[test]
    fn table_shape() {
        let cfg = tiny();
        let stats = run_online_point(&cfg, &campaign_strategies()).unwrap();
        let table = online_table(&cfg, &stats);
        assert_eq!(table.rows.len(), 5);
        assert!(table.title.contains("Online campaign"));
        for row in &table.rows {
            assert_eq!(row.len(), table.headers.len());
        }
    }

    /// The real-log fixture shared with `redistrib-online`'s SWF tests.
    const SWF_FIXTURE: &str = include_str!("../../online/tests/fixtures/tiny.swf");

    #[test]
    fn swf_replay_runs_baseline_normalized() {
        let cfg = SwfCampaignConfig {
            p: 96,
            mtbf_years: 15.0,
            runs: 3,
            base_seed: 42,
            mapping: SwfMapping::default(),
        };
        let records = parse_swf(SWF_FIXTURE).unwrap();
        let jobs = swf_jobs(&records, &cfg.mapping);
        let stats = run_swf_point(
            &jobs,
            &cfg,
            &[
                OnlineStrategy::no_resize(),
                OnlineStrategy::resizing(Heuristic::IteratedGreedyEndLocal),
                OnlineStrategy::resizing(Heuristic::WarmGreedy),
            ],
        )
        .unwrap();
        assert_eq!(stats.len(), 3);
        assert!((stats[0].stretch_ratio - 1.0).abs() < 1e-12, "baseline normalizes to 1");
        for s in &stats {
            assert!(s.mean_stretch >= 1.0 - 1e-9, "{}: stretch {}", s.name, s.mean_stretch);
            assert!(s.mean_utilization > 0.0);
        }
    }

    #[test]
    fn swf_replay_is_deterministic() {
        let records = parse_swf(SWF_FIXTURE).unwrap();
        let jobs = swf_jobs(&records, &SwfMapping::default());
        let cfg = SwfCampaignConfig { runs: 2, ..SwfCampaignConfig::default_point() };
        let strategies = [OnlineStrategy::resizing(Heuristic::ShortestTasksFirstEndLocal)];
        let a = run_swf_point(&jobs, &cfg, &strategies).unwrap();
        let b = run_swf_point(&jobs, &cfg, &strategies).unwrap();
        assert_eq!(a[0].stretch_ratio, b[0].stretch_ratio);
        assert_eq!(a[0].makespan_ratio, b[0].makespan_ratio);
    }

    #[test]
    fn swf_campaign_table_renders_and_rejects_garbage() {
        let table = swf_campaign_table(SWF_FIXTURE, "tiny.swf", Some(2), 7).unwrap();
        assert!(table.title.contains("SWF replay"));
        assert!(table.rows.iter().any(|r| r[0] == "WarmGreedy+arrival"));
        let err = swf_campaign_table("1 2 3", "bad.swf", Some(1), 0).unwrap_err();
        assert!(err.contains("too few fields"), "{err}");
    }
}
