//! Figure 11: impact of the per-processor MTBF with `n = 100`, `p = 5000`
//! (the large-platform companion of Figure 10).

use redistrib_core::ScheduleError;

use super::{fig10::mtbf_sweep, FigOpts, FigureReport};

/// Runs the Figure 11 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let (n, p, m_scale) = if opts.quick { (10usize, 240u32, 0.1) } else { (100, 5000, 1.0) };
    let table = mtbf_sweep(
        &format!("Figure 11 — impact of MTBF with n = {n}, p = {p}"),
        n,
        p,
        1.0,
        m_scale,
        opts,
    )?;
    Ok(FigureReport {
        id: "fig11",
        title: format!("Impact of MTBF with n = {n} and p = {p}"),
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs() {
        let report = run(&FigOpts::quick()).unwrap();
        assert_eq!(report.tables.len(), 1);
        assert!(!report.tables[0].rows.is_empty());
    }
}
