//! Figure 7: impact of the number of tasks `n` with `p = 5000` processors.
//!
//! Fault context (per-processor MTBF 100 years), `n ∈ [100, 1000]`. Curves:
//! the no-redistribution baseline (1.0), the four heuristic combinations,
//! and the fault-free-with-RC reference.
//!
//! Paper shape: more tasks ⇒ more flexibility ⇒ bigger gains (> 40 % at
//! `n = 1000`); IteratedGreedy beats ShortestTasksFirst; EndGreedy helps
//! STF but changes little for IG.

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::workload::WorkloadParams;

use super::{fault_figure_variants, sweep_table, FigOpts, FigureReport};

/// Runs the Figure 7 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let runs = opts.resolve_runs();
    let (p, ns, m_scale, mtbf_years) = if opts.quick {
        // Quick mode drops the MTBF so the fault policies actually fire.
        (120u32, vec![6usize, 12, 24, 48], 0.1, 3.0)
    } else {
        (5000u32, (1..=10).map(|k| k * 100).collect(), 1.0, 100.0)
    };

    let points: Vec<(String, PointConfig)> = ns
        .iter()
        .map(|&n| {
            let mut wl = WorkloadParams::paper_default(n);
            wl.m_inf *= m_scale;
            wl.m_sup *= m_scale;
            let cfg = PointConfig {
                workload: wl,
                runs,
                mtbf_years,
                base_seed: opts.seed,
                ..PointConfig::paper_default(n, p)
            };
            (n.to_string(), cfg)
        })
        .collect();

    let table = sweep_table(
        &format!("Figure 7 — impact of n with p = {p} processors"),
        "n",
        &points,
        Variant::FaultNoRc,
        &fault_figure_variants(),
    )?;
    Ok(FigureReport {
        id: "fig7",
        title: format!("Impact of n with p = {p} processors"),
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shape() {
        let report = run(&FigOpts::quick()).unwrap();
        let table = &report.tables[0];
        assert_eq!(table.headers.len(), 7);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row[1], "1.000", "baseline normalizes to 1");
            // The fault-free reference must be at least as good as every
            // fault-context heuristic on average.
            let ff: f64 = row[6].parse().unwrap();
            for cell in &row[2..=5] {
                let h: f64 = cell.parse().unwrap();
                assert!(h >= ff - 0.05, "heuristic below fault-free reference");
            }
        }
    }
}
