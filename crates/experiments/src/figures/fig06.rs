//! Figure 6: fault-free redistribution with `n = 1000` tasks,
//! `p ∈ [2000, 5000]` — the large-scale companion of Figure 5, with the
//! same two panels and curves.

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::workload::WorkloadParams;

use super::{fault_free_figure_variants, sweep_table, FigOpts, FigureReport};

/// Runs the Figure 6 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let runs = opts.resolve_runs();
    let (n, ps, m_scale) = if opts.quick {
        (40usize, vec![80u32, 120, 160, 200], 0.1)
    } else {
        (1000usize, (4..=10).map(|k| k * 500).collect(), 1.0)
    };

    let mut tables = Vec::new();
    for (panel, heterogeneous) in [("a", false), ("b", true)] {
        let points: Vec<(String, PointConfig)> = ps
            .iter()
            .map(|&p| {
                let mut wl = if heterogeneous {
                    WorkloadParams::heterogeneous(n)
                } else {
                    WorkloadParams::paper_default(n)
                };
                wl.m_inf *= m_scale;
                wl.m_sup *= m_scale;
                let cfg = PointConfig {
                    workload: wl,
                    p,
                    runs,
                    base_seed: opts.seed,
                    ..PointConfig::paper_default(n, p)
                };
                (p.to_string(), cfg)
            })
            .collect();
        let minf = if heterogeneous { "1500" } else { "1.5e6" };
        tables.push(sweep_table(
            &format!("Figure 6{panel} — fault-free redistribution, n = {n}, minf = {minf}"),
            "p",
            &points,
            Variant::FaultFreeNoRc,
            &fault_free_figure_variants(),
        )?);
    }
    Ok(FigureReport {
        id: "fig6",
        title: "Performance of redistribution in a fault-free context (n = 1000)".into(),
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_and_gains() {
        let report = run(&FigOpts::quick()).unwrap();
        assert_eq!(report.tables.len(), 2);
        let local_first: f64 = report.tables[0].rows[0][3].parse().unwrap();
        assert!(local_first <= 1.0 + 1e-9);
    }
}
