//! Figure 10: impact of the per-processor MTBF with `n = 100`, `p = 1000`.
//!
//! MTBF sweep from 5 to 125 years. Paper shape: gains shrink as the MTBF
//! drops (more failures, less stable schedules); below ~10 years
//! ShortestTasksFirst overtakes IteratedGreedy, whose aggressive
//! concentration of processors backfires (a task on many processors has a
//! tiny MTBF).

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::table::Table;
use crate::workload::WorkloadParams;

use super::{fault_figure_variants, sweep_table, FigOpts, FigureReport};

/// The paper's sweep grid (years).
pub const FULL_MTBF_GRID: [f64; 13] =
    [5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0, 95.0, 105.0, 115.0, 125.0];

/// Quick-mode grid (years).
pub const QUICK_MTBF_GRID: [f64; 3] = [2.0, 10.0, 50.0];

/// Builds the MTBF sweep table for the given platform and checkpoint unit
/// cost (shared by Figures 10, 11 and 13).
///
/// # Errors
/// Propagates engine errors.
pub fn mtbf_sweep(
    title: &str,
    n: usize,
    p: u32,
    ckpt_unit: f64,
    m_scale: f64,
    opts: &FigOpts,
) -> Result<Table, ScheduleError> {
    let runs = opts.resolve_runs();
    let grid: &[f64] = if opts.quick { &QUICK_MTBF_GRID } else { &FULL_MTBF_GRID };
    let points: Vec<(String, PointConfig)> = grid
        .iter()
        .map(|&mtbf| {
            let mut wl = WorkloadParams::paper_default(n);
            wl.m_inf *= m_scale;
            wl.m_sup *= m_scale;
            wl.ckpt_unit = ckpt_unit;
            let cfg = PointConfig {
                workload: wl,
                mtbf_years: mtbf,
                runs,
                base_seed: opts.seed,
                ..PointConfig::paper_default(n, p)
            };
            (format!("{mtbf}"), cfg)
        })
        .collect();
    sweep_table(title, "MTBF (years)", &points, Variant::FaultNoRc, &fault_figure_variants())
}

/// Runs the Figure 10 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let (n, p, m_scale) = if opts.quick { (10usize, 60u32, 0.1) } else { (100, 1000, 1.0) };
    let table = mtbf_sweep(
        &format!("Figure 10 — impact of MTBF with n = {n}, p = {p}"),
        n,
        p,
        1.0,
        m_scale,
        opts,
    )?;
    Ok(FigureReport {
        id: "fig10",
        title: format!("Impact of MTBF with n = {n} and p = {p}"),
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs() {
        let report = run(&FigOpts::quick()).unwrap();
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), QUICK_MTBF_GRID.len());
        for row in &table.rows {
            assert_eq!(row[1], "1.000");
            // Fault-free reference is the floor of every curve.
            let ff: f64 = row[6].parse().unwrap();
            assert!(ff <= 1.0 + 1e-9);
        }
    }
}
