//! Figure 13: MTBF sweeps at three checkpointing costs
//! (`c ∈ {1, 0.1, 0.01}`), `n = 100`, `p = 1000`.
//!
//! Paper shape: with cheap checkpoints the curves flatten — little work is
//! lost per failure, so even low MTBFs stay close to the fault-free
//! reference.

use redistrib_core::ScheduleError;

use super::{fig10::mtbf_sweep, FigOpts, FigureReport};

/// Runs the Figure 13 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let (n, p, m_scale) = if opts.quick { (10usize, 60u32, 0.1) } else { (100, 1000, 1.0) };
    let costs: &[f64] = if opts.quick { &[1.0, 0.01] } else { &[1.0, 0.1, 0.01] };

    let mut tables = Vec::new();
    for (panel, &c) in ["a", "b", "c"].iter().zip(costs) {
        tables.push(mtbf_sweep(
            &format!(
                "Figure 13{panel} — MTBF sweep with checkpoint cost c = {c} (n = {n}, p = {p})"
            ),
            n,
            p,
            c,
            m_scale,
            opts,
        )?);
    }
    Ok(FigureReport {
        id: "fig13",
        title: format!("Impact of checkpointing cost across MTBFs (n = {n}, p = {p})"),
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_has_one_panel_per_cost() {
        let report = run(&FigOpts::quick()).unwrap();
        assert_eq!(report.tables.len(), 2);
    }
}
