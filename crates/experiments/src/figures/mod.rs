//! One harness per figure of the paper's evaluation (§6.2).
//!
//! Every harness regenerates the figure's data series as [`Table`]s:
//! normalized makespans (baseline = 1.0) per sweep value, one column per
//! curve of the paper's plot. `quick: true` shrinks the instance sizes and
//! run counts so the whole suite executes in seconds (shape-preserving
//! smoke configuration; the full configuration matches the paper's
//! parameters).

pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;

use redistrib_core::{Heuristic, ScheduleError};

use crate::runner::{run_point, PointConfig, Variant};
use crate::table::{fmt_ratio, Table};

/// A regenerated figure: id, caption and one table per panel.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure identifier (`fig5`, `fig9a`, …).
    pub id: &'static str,
    /// Caption.
    pub title: String,
    /// One table per panel.
    pub tables: Vec<Table>,
}

/// Options shared by all harnesses.
#[derive(Debug, Clone, Copy)]
pub struct FigOpts {
    /// Shrink sizes and run counts for a fast, shape-preserving pass.
    pub quick: bool,
    /// Override the number of runs per point (default: 50 full, 3 quick).
    pub runs: Option<usize>,
    /// Base seed.
    pub seed: u64,
}

impl Default for FigOpts {
    fn default() -> Self {
        Self { quick: false, runs: None, seed: 0xC0_5CED }
    }
}

impl FigOpts {
    /// Quick-mode options.
    #[must_use]
    pub fn quick() -> Self {
        Self { quick: true, ..Self::default() }
    }

    pub(crate) fn resolve_runs(&self) -> usize {
        self.runs.unwrap_or(if self.quick { 3 } else { 50 })
    }

    /// Number of runs per point after applying quick/override rules.
    #[must_use]
    pub fn resolve_runs_public(&self) -> usize {
        self.resolve_runs()
    }
}

/// The six curves of the fault-context figures (Figs. 7, 8, 10–14), in the
/// paper's legend order.
#[must_use]
pub fn fault_figure_variants() -> Vec<Variant> {
    vec![
        Variant::FaultNoRc,
        Variant::Fault(Heuristic::IteratedGreedyEndGreedy),
        Variant::Fault(Heuristic::IteratedGreedyEndLocal),
        Variant::Fault(Heuristic::ShortestTasksFirstEndGreedy),
        Variant::Fault(Heuristic::ShortestTasksFirstEndLocal),
        Variant::FaultFree(Heuristic::EndLocalOnly),
    ]
}

/// The three curves of the fault-free figures (Figs. 5–6).
#[must_use]
pub fn fault_free_figure_variants() -> Vec<Variant> {
    vec![
        Variant::FaultFreeNoRc,
        Variant::FaultFree(Heuristic::EndGreedyOnly),
        Variant::FaultFree(Heuristic::EndLocalOnly),
    ]
}

/// Runs a one-dimensional sweep and formats the normalized table.
///
/// `points` pairs each x-axis label with its fully resolved configuration.
///
/// # Errors
/// Propagates the first engine error.
pub fn sweep_table(
    title: &str,
    x_label: &str,
    points: &[(String, PointConfig)],
    baseline: Variant,
    variants: &[Variant],
) -> Result<Table, ScheduleError> {
    let mut headers = vec![x_label.to_string()];
    headers.extend(variants.iter().map(|v| v.label()));
    let mut table = Table::new(title, headers);
    for (x, cfg) in points {
        let stats = run_point(cfg, baseline, variants)?;
        let mut row = vec![x.clone()];
        row.extend(stats.iter().map(|s| fmt_ratio(s.mean_ratio)));
        table.push_row(row);
    }
    Ok(table)
}

/// Dispatches a figure harness by id (`fig5` … `fig14`).
///
/// # Errors
/// Propagates engine errors.
pub fn run_figure(id: &str, opts: &FigOpts) -> Result<Option<FigureReport>, ScheduleError> {
    Ok(Some(match id {
        "fig5" => fig05::run(opts)?,
        "fig6" => fig06::run(opts)?,
        "fig7" => fig07::run(opts)?,
        "fig8" => fig08::run(opts)?,
        "fig9" => fig09::run(opts)?,
        "fig10" => fig10::run(opts)?,
        "fig11" => fig11::run(opts)?,
        "fig12" => fig12::run(opts)?,
        "fig13" => fig13::run(opts)?,
        "fig14" => fig14::run(opts)?,
        _ => return Ok(None),
    }))
}

/// All figure ids, in paper order.
pub const ALL_FIGURES: [&str; 10] =
    ["fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_in_legend_order() {
        let v = fault_figure_variants();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], Variant::FaultNoRc);
        assert_eq!(v[5], Variant::FaultFree(Heuristic::EndLocalOnly));
        assert_eq!(fault_free_figure_variants().len(), 3);
    }

    #[test]
    fn unknown_figure_id() {
        assert!(run_figure("fig99", &FigOpts::quick()).unwrap().is_none());
    }

    #[test]
    fn quick_opts_resolve_runs() {
        assert_eq!(FigOpts::quick().resolve_runs(), 3);
        assert_eq!(FigOpts::default().resolve_runs(), 50);
        let custom = FigOpts { runs: Some(7), ..FigOpts::quick() };
        assert_eq!(custom.resolve_runs(), 7);
    }
}
