//! Figure 8: impact of the number of processors `p` with `n = 100` tasks.
//!
//! Fault context, `p ∈ [200, 5000]`. Paper shape: gains shrink as `p`
//! grows (each task saturates its speedup profile) but stay ≥ 10 %; the
//! per-task MTBF `µ/j` also shrinks with larger allocations, increasing the
//! number of failures.

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::workload::WorkloadParams;

use super::{fault_figure_variants, sweep_table, FigOpts, FigureReport};

/// Runs the Figure 8 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let runs = opts.resolve_runs();
    let (n, ps, m_scale, mtbf_years) = if opts.quick {
        // Quick mode drops the MTBF so the fault policies actually fire.
        (12usize, vec![24u32, 60, 120, 240], 0.1, 3.0)
    } else {
        (
            100usize,
            vec![200u32, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000],
            1.0,
            100.0,
        )
    };

    let points: Vec<(String, PointConfig)> = ps
        .iter()
        .map(|&p| {
            let mut wl = WorkloadParams::paper_default(n);
            wl.m_inf *= m_scale;
            wl.m_sup *= m_scale;
            let cfg = PointConfig {
                workload: wl,
                runs,
                mtbf_years,
                base_seed: opts.seed,
                ..PointConfig::paper_default(n, p)
            };
            (p.to_string(), cfg)
        })
        .collect();

    let table = sweep_table(
        &format!("Figure 8 — impact of p with n = {n} tasks"),
        "p",
        &points,
        Variant::FaultNoRc,
        &fault_figure_variants(),
    )?;
    Ok(FigureReport {
        id: "fig8",
        title: format!("Impact of p with n = {n} tasks"),
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shape() {
        let report = run(&FigOpts::quick()).unwrap();
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 4);
        // Gains at the smallest p should be visible for IG-EL.
        let igel_small: f64 = table.rows[0][3].parse().unwrap();
        assert!(igel_small <= 1.02, "IG-EL at small p: {igel_small}");
    }
}
