//! Figure 14: impact of the sequential fraction `f` (`0 ≤ f ≤ 0.5`),
//! `n = 100`, `p = 1000`.
//!
//! Paper shape: the more parallel the tasks (small `f`), the more effective
//! redistribution is; at `f = 0.5` extra processors barely help and every
//! curve converges toward the baseline.

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::workload::WorkloadParams;

use super::{fault_figure_variants, sweep_table, FigOpts, FigureReport};

/// Runs the Figure 14 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let runs = opts.resolve_runs();
    let (n, p, m_scale, grid): (usize, u32, f64, Vec<f64>) = if opts.quick {
        (10, 60, 0.1, vec![0.0, 0.25, 0.5])
    } else {
        (100, 1000, 1.0, vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5])
    };

    let points: Vec<(String, PointConfig)> = grid
        .iter()
        .map(|&f| {
            let mut wl = WorkloadParams::paper_default(n);
            wl.m_inf *= m_scale;
            wl.m_sup *= m_scale;
            wl.seq_fraction = f;
            let cfg = PointConfig {
                workload: wl,
                runs,
                base_seed: opts.seed,
                ..PointConfig::paper_default(n, p)
            };
            (format!("{f}"), cfg)
        })
        .collect();

    let table = sweep_table(
        &format!("Figure 14 — impact of the sequential fraction (n = {n}, p = {p})"),
        "f (sequential fraction)",
        &points,
        Variant::FaultNoRc,
        &fault_figure_variants(),
    )?;
    Ok(FigureReport {
        id: "fig14",
        title: format!("Impact of the sequential fraction of time with n = {n} and p = {p}"),
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs() {
        let report = run(&FigOpts::quick()).unwrap();
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 3);
    }

    #[test]
    fn parallel_tasks_gain_more() {
        let report = run(&FigOpts::quick()).unwrap();
        let table = &report.tables[0];
        // IG-EL column: the gain at f = 0 should be at least as large as at
        // f = 0.5 (redistribution helps parallel tasks more).
        let first: f64 = table.rows[0][3].parse().unwrap();
        let last: f64 = table.rows[table.rows.len() - 1][3].parse().unwrap();
        assert!(
            first <= last + 0.1,
            "gain should not shrink as tasks get more parallel: {first} vs {last}"
        );
    }
}
