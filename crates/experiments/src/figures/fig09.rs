//! Figure 9: heuristic behavior along a **single execution**
//! (`n = 100`, `p = 1000`, per-processor MTBF 50 years).
//!
//! After each handled failure the engine snapshots (a) the current
//! estimated makespan `max_i t^U_i` and (b) the population standard
//! deviation of per-task allocation sizes. The paper contrasts
//! no-redistribution, IteratedGreedy and ShortestTasksFirst on the same
//! fault trace: IG yields the lowest makespan and the largest allocation
//! spread (it concentrates processors on the longest task quickly).

use redistrib_core::{Heuristic, ScheduleError};
use redistrib_model::Platform;
use redistrib_sim::units;

use crate::runner::{execute_variant, run_seeds, Variant};
use crate::table::{fmt_num, Table};
use crate::workload::{generate, WorkloadParams};

use super::{FigOpts, FigureReport};

/// Runs the Figure 9 harness (one execution per series, shared trace).
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let (n, p, mtbf_years, m_scale) =
        if opts.quick { (12usize, 60u32, 1.0, 0.1) } else { (100usize, 1000u32, 50.0, 1.0) };
    let mut wl = WorkloadParams::paper_default(n);
    wl.m_inf *= m_scale;
    wl.m_sup *= m_scale;

    let (workload_seed, fault_seed) = run_seeds(opts.seed, 0);
    let workload = generate(&wl, workload_seed);
    let platform = Platform::with_mtbf(p, units::years(mtbf_years));

    let series = [
        ("No redistribution", Variant::FaultNoRc),
        ("Iterated greedy", Variant::Fault(Heuristic::IteratedGreedyEndLocal)),
        ("Shortest tasks first", Variant::Fault(Heuristic::ShortestTasksFirstEndLocal)),
    ];

    let mut makespan_table = Table::new(
        format!("Figure 9a — estimated makespan at each handled failure (n = {n}, p = {p}, MTBF {mtbf_years} y)"),
        vec!["series".into(), "fault date (s)".into(), "makespan (s)".into()],
    );
    let mut stddev_table = Table::new(
        format!("Figure 9b — allocation standard deviation at each handled failure (n = {n}, p = {p}, MTBF {mtbf_years} y)"),
        vec!["series".into(), "fault date (s)".into(), "#processors stddev".into()],
    );

    for (label, variant) in series {
        let out = execute_variant(variant, &workload, platform, fault_seed, true)?;
        for (time, makespan, stddev) in out.trace.makespan_series() {
            makespan_table.push_row(vec![label.into(), fmt_num(time), fmt_num(makespan)]);
            stddev_table.push_row(vec![label.into(), fmt_num(time), fmt_num(stddev)]);
        }
    }

    Ok(FigureReport {
        id: "fig9",
        title: format!("Heuristic behaviors on a single execution (n = {n}, p = {p})"),
        tables: vec![makespan_table, stddev_table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_produces_series() {
        let report = run(&FigOpts::quick()).unwrap();
        assert_eq!(report.tables.len(), 2);
        let mk = &report.tables[0];
        assert!(!mk.rows.is_empty(), "need at least one handled fault");
        // All three series present.
        for label in ["No redistribution", "Iterated greedy", "Shortest tasks first"] {
            assert!(mk.rows.iter().any(|r| r[0] == label), "missing series {label}");
        }
    }

    #[test]
    fn stddev_zero_without_redistribution_until_first_end() {
        let report = run(&FigOpts::quick()).unwrap();
        let sd = &report.tables[1];
        // The no-redistribution series only changes its allocation spread
        // when tasks end; it exists and is finite.
        for row in sd.rows.iter().filter(|r| r[0] == "No redistribution") {
            let v: f64 = row[2].parse().unwrap();
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
