//! Figure 5: performance of redistribution in a **fault-free** context,
//! `n = 100` tasks, `p ∈ [200, 2000]`, `msup = 2.5e6`.
//!
//! Two panels: (a) `minf = 1.5e6` (near-homogeneous sizes) and
//! (b) `minf = 1500` (heterogeneous). Curves: without redistribution
//! (baseline, 1.0), with RC rebuilt greedily (`EndGreedy`), with RC by
//! local decisions (`EndLocal`).
//!
//! Paper shape: ≥ 20 % gain below ~500 processors, shrinking as `p` grows
//! (every task eventually has all the processors it can use); larger gain
//! in the heterogeneous panel.

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::workload::WorkloadParams;

use super::{fault_free_figure_variants, sweep_table, FigOpts, FigureReport};

/// Runs the Figure 5 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let runs = opts.resolve_runs();
    let (n, ps, m_scale) = if opts.quick {
        (12usize, vec![24u32, 48, 96, 192], 0.1)
    } else {
        (100usize, (1..=10).map(|k| k * 200).collect(), 1.0)
    };

    let mut tables = Vec::new();
    for (panel, heterogeneous) in [("a", false), ("b", true)] {
        let points: Vec<(String, PointConfig)> = ps
            .iter()
            .map(|&p| {
                let mut wl = if heterogeneous {
                    WorkloadParams::heterogeneous(n)
                } else {
                    WorkloadParams::paper_default(n)
                };
                wl.m_inf *= m_scale;
                wl.m_sup *= m_scale;
                let cfg = PointConfig {
                    workload: wl,
                    p,
                    runs,
                    base_seed: opts.seed,
                    ..PointConfig::paper_default(n, p)
                };
                (p.to_string(), cfg)
            })
            .collect();
        let minf = if heterogeneous { "1500" } else { "1.5e6" };
        tables.push(sweep_table(
            &format!("Figure 5{panel} — fault-free redistribution, n = {n}, minf = {minf}"),
            "p",
            &points,
            Variant::FaultFreeNoRc,
            &fault_free_figure_variants(),
        )?);
    }
    Ok(FigureReport {
        id: "fig5",
        title: "Performance of redistribution in a fault-free context (n = 100)".into(),
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_produces_two_panels_with_gains() {
        let report = run(&FigOpts::quick()).unwrap();
        assert_eq!(report.tables.len(), 2);
        for table in &report.tables {
            assert_eq!(table.rows.len(), 4);
            for row in &table.rows {
                // Baseline column is 1.0; RC columns must not exceed it.
                assert_eq!(row[1], "1.000");
                let greedy: f64 = row[2].parse().unwrap();
                let local: f64 = row[3].parse().unwrap();
                assert!(greedy <= 1.0 + 1e-9);
                assert!(local <= 1.0 + 1e-9);
            }
        }
        // At the smallest p, redistribution should show a visible gain.
        let first_local: f64 = report.tables[0].rows[0][3].parse().unwrap();
        assert!(first_local < 1.0, "expected a gain at small p, got {first_local}");
    }
}
