//! Figure 12: impact of the checkpointing cost with `n = 100`, `p = 1000`.
//!
//! The per-data-unit checkpoint time `c` sweeps the decades from 0.01 to 1
//! (log axis in the paper). Paper shape: cheaper checkpoints shrink the
//! time lost per failure, closing the gap between the fault context and the
//! fault-free reference.

use redistrib_core::ScheduleError;

use crate::runner::{PointConfig, Variant};
use crate::workload::WorkloadParams;

use super::{fault_figure_variants, sweep_table, FigOpts, FigureReport};

/// Runs the Figure 12 harness.
///
/// # Errors
/// Propagates engine errors.
pub fn run(opts: &FigOpts) -> Result<FigureReport, ScheduleError> {
    let runs = opts.resolve_runs();
    let (n, p, m_scale, grid): (usize, u32, f64, Vec<f64>) = if opts.quick {
        (10, 60, 0.1, vec![0.01, 1.0])
    } else {
        (100, 1000, 1.0, vec![0.01, 0.03, 0.1, 0.3, 1.0])
    };
    // Shorter MTBF than the 100-year default so the checkpoint cost has
    // failures to matter for (the paper's figure shows a visible spread).
    let mtbf_years = if opts.quick { 5.0 } else { 50.0 };

    let points: Vec<(String, PointConfig)> = grid
        .iter()
        .map(|&c| {
            let mut wl = WorkloadParams::paper_default(n);
            wl.m_inf *= m_scale;
            wl.m_sup *= m_scale;
            wl.ckpt_unit = c;
            let cfg = PointConfig {
                workload: wl,
                mtbf_years,
                runs,
                base_seed: opts.seed,
                ..PointConfig::paper_default(n, p)
            };
            (format!("{c}"), cfg)
        })
        .collect();

    let table = sweep_table(
        &format!(
            "Figure 12 — impact of checkpointing cost (n = {n}, p = {p}, MTBF {mtbf_years} y)"
        ),
        "c (checkpoint cost per data unit)",
        &points,
        Variant::FaultNoRc,
        &fault_figure_variants(),
    )?;
    Ok(FigureReport {
        id: "fig12",
        title: format!("Impact of checkpointing cost with n = {n} and p = {p}"),
        tables: vec![table],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs() {
        let report = run(&FigOpts::quick()).unwrap();
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row[1], "1.000");
        }
    }
}
