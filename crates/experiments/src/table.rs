//! Result tables: the textual equivalent of the paper's plots.
//!
//! Each figure harness produces one or more [`Table`]s, renderable as
//! GitHub-flavored markdown (for EXPERIMENTS.md), CSV, or gnuplot-ready
//! whitespace-separated data.

use std::fmt::Write as _;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title (e.g. `Figure 7 — impact of n (p = 5000)`).
    pub title: String,
    /// Column headers; the first column is the sweep variable.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self { title: title.into(), headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as GitHub-flavored markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (title omitted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as gnuplot-friendly data: `#`-prefixed header, tab-separated
    /// columns.
    #[must_use]
    pub fn to_gnuplot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "# {}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }
}

/// Formats a float with three decimals (normalized ratios).
#[must_use]
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float compactly (raw quantities).
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t =
            Table::new("Figure X", vec!["p".into(), "Without RC".into(), "With RC".into()]);
        t.push_row(vec!["200".into(), "1.000".into(), "0.780".into()]);
        t.push_row(vec!["400".into(), "1.000".into(), "0.820".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = table().to_markdown();
        assert!(md.contains("### Figure X"));
        assert!(md.contains("| p | Without RC | With RC |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| 400 | 1.000 | 0.820 |"));
    }

    #[test]
    fn csv_shape() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "p,Without RC,With RC");
        assert_eq!(lines[2], "400,1.000,0.820");
    }

    #[test]
    fn gnuplot_shape() {
        let g = table().to_gnuplot();
        assert!(g.starts_with("# Figure X\n"));
        assert!(g.contains("200\t1.000\t0.780"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(0.7891), "0.789");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(3.25), "3.25");
        assert_eq!(fmt_num(1.8e7), "1.800e7");
    }
}
