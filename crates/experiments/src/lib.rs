//! # redistrib-experiments
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6):
//!
//! * [`workload`] — the §6.1 workload generator;
//! * [`runner`] — multi-run execution with per-run normalization by the
//!   no-redistribution baseline, parallelized across runs;
//! * [`figures`] — one harness per figure (Figs. 5–14), each with a full
//!   (paper-parameter) and a quick (shape-preserving) configuration;
//! * [`extensions`] — beyond-the-paper experiments: Eq. 4 Monte-Carlo
//!   validation, ambiguity ablations, optimality gaps, profile sweeps;
//! * [`online`] — online co-scheduling campaigns: dynamic job arrivals with
//!   malleable resizing, normalized per run by the no-resize baseline;
//! * [`params`] — Table 1 (notation and defaults);
//! * [`plot`] — ASCII line charts for the terminal;
//! * [`table`] — markdown/CSV/gnuplot rendering.
//!
//! The `experiments` binary exposes all of this on the command line:
//!
//! ```text
//! experiments all --quick --out results/
//! experiments fig7 --runs 50
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod extensions;
pub mod figures;
pub mod online;
pub mod params;
pub mod plot;
pub mod runner;
pub mod table;
pub mod workload;

pub use figures::{run_figure, FigOpts, FigureReport, ALL_FIGURES};
pub use online::{run_online_point, OnlinePointConfig, OnlineVariantStats};
pub use runner::{run_point, PointConfig, Variant, VariantStats};
pub use table::Table;
pub use workload::{generate, WorkloadParams};
