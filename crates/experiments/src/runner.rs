//! Multi-run experiment execution with per-run normalization.
//!
//! §6.2 methodology: every configuration point is executed `x = 50` times
//! (fresh workload and fault trace per run); each variant's makespan is
//! normalized by the *fault context without redistribution* baseline of the
//! same run (or the fault-free no-redistribution baseline for the
//! fault-free figures); normalized ratios are averaged across runs.
//!
//! Execution is a **work-stealing** pool: workers claim run indices from a
//! shared atomic counter (no static partitioning, so one slow run cannot
//! idle a worker's whole stripe) and *stream* their results back over a
//! channel. [`run_point`] reduces each run to a handful of floats and feeds
//! them into [`Welford`] accumulators **in run order** (a small reorder
//! buffer holds early out-of-order arrivals), so aggregation is
//! bit-deterministic regardless of scheduling while never holding the whole
//! campaign's outcomes in memory.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use redistrib_core::{run, EngineConfig, Heuristic, RunOutcome, ScheduleError};
use redistrib_model::{Platform, TimeCalc, Workload};
use redistrib_sim::rng::SplitMix64;
use redistrib_sim::stats::Welford;
use redistrib_sim::units;

use crate::workload::{generate, WorkloadParams};

/// One experiment variant (a curve in a paper figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Fault context, no redistribution (normalization baseline of the
    /// fault figures).
    FaultNoRc,
    /// Fault context with the given heuristic combination.
    Fault(Heuristic),
    /// Fault-free context, no redistribution (baseline of Figs. 5–6).
    FaultFreeNoRc,
    /// Fault-free context with redistribution at task ends.
    FaultFree(Heuristic),
}

impl Variant {
    /// Legend label matching the paper.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Variant::FaultNoRc => "Fault context without RC".into(),
            Variant::Fault(h) => h.name().into(),
            Variant::FaultFreeNoRc => "Fault-free without RC".into(),
            Variant::FaultFree(Heuristic::EndLocalOnly) => {
                "Fault-free context with RC (local)".into()
            }
            Variant::FaultFree(Heuristic::EndGreedyOnly) => {
                "Fault-free context with RC (greedy)".into()
            }
            Variant::FaultFree(h) => format!("Fault-free {}", h.name()),
        }
    }

    fn heuristic(self) -> Heuristic {
        match self {
            Variant::FaultNoRc | Variant::FaultFreeNoRc => Heuristic::NoRedistribution,
            Variant::Fault(h) | Variant::FaultFree(h) => h,
        }
    }

    fn fault_aware(self) -> bool {
        matches!(self, Variant::FaultNoRc | Variant::Fault(_))
    }
}

/// One fully resolved configuration point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointConfig {
    /// Workload parameters.
    pub workload: WorkloadParams,
    /// Platform size `p`.
    pub p: u32,
    /// Per-processor MTBF in years (paper default 100).
    pub mtbf_years: f64,
    /// Downtime `D` in seconds.
    pub downtime: f64,
    /// Number of runs to average (`x`; paper 50).
    pub runs: usize,
    /// Base seed; run `r` derives its workload and fault seeds from
    /// `(base_seed, r)`.
    pub base_seed: u64,
}

impl PointConfig {
    /// Paper defaults for a `(n, p)` point: MTBF 100 years, `D = 60 s`,
    /// 50 runs.
    #[must_use]
    pub fn paper_default(n: usize, p: u32) -> Self {
        Self {
            workload: WorkloadParams::paper_default(n),
            p,
            mtbf_years: 100.0,
            downtime: Platform::DEFAULT_DOWNTIME,
            runs: 50,
            base_seed: 0xC0_5CED,
        }
    }

    fn platform(&self) -> Platform {
        Platform::with_mtbf(self.p, units::years(self.mtbf_years)).downtime(self.downtime)
    }
}

/// Aggregated statistics of one variant at one configuration point.
#[derive(Debug, Clone)]
pub struct VariantStats {
    /// The variant.
    pub variant: Variant,
    /// Mean of per-run normalized makespans.
    pub mean_ratio: f64,
    /// 95 % CI half-width of the normalized makespan.
    pub ci95: f64,
    /// Mean raw makespan (seconds).
    pub mean_makespan: f64,
    /// Mean handled faults per run.
    pub mean_faults: f64,
    /// Mean committed redistributions per run.
    pub mean_redistributions: f64,
}

/// Executes one variant for one prepared run (standalone entry point: the
/// campaign loop shares calculators across variants via [`run_point_raw`]
/// instead).
///
/// # Errors
/// Propagates engine errors (undersized platform, event-limit).
pub fn execute_variant(
    variant: Variant,
    workload: &Workload,
    platform: Platform,
    fault_seed: u64,
    record_trace: bool,
) -> Result<RunOutcome, ScheduleError> {
    let calc = if variant.fault_aware() {
        TimeCalc::new(workload.clone(), platform)
    } else {
        TimeCalc::fault_free(workload.clone(), platform)
    };
    execute_on(&calc, variant, platform, fault_seed, record_trace)
}

/// Executes one variant against a prepared (shared) calculator.
fn execute_on(
    calc: &TimeCalc,
    variant: Variant,
    platform: Platform,
    fault_seed: u64,
    record_trace: bool,
) -> Result<RunOutcome, ScheduleError> {
    let cfg = if variant.fault_aware() {
        EngineConfig::with_faults(fault_seed, platform.proc_mtbf)
    } else {
        EngineConfig::fault_free()
    };
    let cfg = if record_trace { cfg.recording() } else { cfg };
    let h = variant.heuristic();
    run(calc, &*h.end_policy(), &*h.fault_policy(), &cfg)
}

/// Derives the per-run seeds from the point's base seed.
#[must_use]
pub fn run_seeds(base_seed: u64, run_idx: usize) -> (u64, u64) {
    let mut mix = SplitMix64::new(base_seed ^ (run_idx as u64).wrapping_mul(0x9E37_79B9));
    (mix.next_u64(), mix.next_u64())
}

/// Per-variant reduction of one run — the only data a campaign keeps per
/// run (outcomes with traces and allocation vectors stay worker-local).
struct ReducedRun {
    baseline_makespan: f64,
    /// `(makespan, handled_faults, redistributions)` per variant.
    rows: Vec<(f64, f64, f64)>,
}

/// Runs all `variants` at `cfg`, normalizing every run by `baseline`, and
/// streams per-run reductions into [`Welford`] aggregators as runs finish.
/// Work-stealing workers keep every core busy; aggregation is applied in
/// run order, so results are bit-deterministic across invocations and
/// thread counts.
///
/// # Errors
/// Propagates the engine error of the lowest-indexed failing run.
pub fn run_point(
    cfg: &PointConfig,
    baseline: Variant,
    variants: &[Variant],
) -> Result<Vec<VariantStats>, ScheduleError> {
    let platform = cfg.platform();
    let mut acc: Vec<(Welford, Welford, Welford, Welford)> =
        vec![Default::default(); variants.len()];
    stream_runs(
        cfg.runs,
        |r| {
            let (workload_seed, fault_seed) = run_seeds(cfg.base_seed, r);
            let workload = generate(&cfg.workload, workload_seed);
            // One calculator per execution mode, shared across variants:
            // the dense time table is computed once per run, not once per
            // curve.
            let needs_fault =
                baseline.fault_aware() || variants.iter().any(|v| v.fault_aware());
            let needs_ff = !baseline.fault_aware() || variants.iter().any(|v| !v.fault_aware());
            let fault_calc = needs_fault.then(|| TimeCalc::new(workload.clone(), platform));
            let ff_calc = needs_ff.then(|| TimeCalc::fault_free(workload.clone(), platform));
            let calc_of = |v: Variant| {
                if v.fault_aware() {
                    fault_calc.as_ref().expect("fault calc prepared")
                } else {
                    ff_calc.as_ref().expect("fault-free calc prepared")
                }
            };
            let base = execute_on(calc_of(baseline), baseline, platform, fault_seed, false)?;
            let mut rows = Vec::with_capacity(variants.len());
            for &v in variants {
                let out = if v == baseline {
                    base.clone()
                } else {
                    execute_on(calc_of(v), v, platform, fault_seed, false)?
                };
                rows.push((
                    out.makespan,
                    out.handled_faults as f64,
                    out.redistributions as f64,
                ));
            }
            Ok(ReducedRun { baseline_makespan: base.makespan, rows })
        },
        |_, red: ReducedRun| {
            for (v, &(mk, faults, rc)) in red.rows.iter().enumerate() {
                acc[v].0.push(mk / red.baseline_makespan);
                acc[v].1.push(mk);
                acc[v].2.push(faults);
                acc[v].3.push(rc);
            }
        },
    )?;
    Ok(variants
        .iter()
        .zip(acc)
        .map(|(&variant, (ratio, mk, faults, rc))| VariantStats {
            variant,
            mean_ratio: ratio.mean(),
            ci95: ratio.ci95_half_width(),
            mean_makespan: mk.mean(),
            mean_faults: faults.mean(),
            mean_redistributions: rc.mean(),
        })
        .collect())
}

/// Per-run outcome bundle (exposed for tests and the Fig. 9 harness).
#[derive(Debug)]
pub struct RunResults {
    /// Baseline makespan of this run.
    pub baseline_makespan: f64,
    /// One outcome per requested variant, in order.
    pub outcomes: Vec<RunOutcome>,
}

/// Executes every run of a point, returning raw outcomes in run order
/// (memory-heavy: prefer [`run_point`] for aggregate statistics).
///
/// # Errors
/// Propagates the engine error of the lowest-indexed failing run.
pub fn run_point_raw(
    cfg: &PointConfig,
    baseline: Variant,
    variants: &[Variant],
) -> Result<Vec<RunResults>, ScheduleError> {
    let platform = cfg.platform();
    parallel_runs(cfg.runs, |r| one_run(cfg, platform, baseline, variants, r))
}

/// Executes `f(run_idx)` for every run index in `0..runs` on a
/// work-stealing pool and returns the results in run order. Convenience
/// wrapper over [`stream_runs`] for callers that do need every result.
///
/// # Errors
/// Returns the error of the lowest-indexed failing run.
pub(crate) fn parallel_runs<T, F>(runs: usize, f: F) -> Result<Vec<T>, ScheduleError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ScheduleError> + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(runs);
    stream_runs(runs, f, |idx, v| {
        debug_assert_eq!(idx, out.len(), "sink must be called in run order");
        out.push(v);
    })?;
    Ok(out)
}

/// Work-stealing streaming executor: workers claim run indices from an
/// atomic counter, execute `f`, and send `(index, result)` over a channel;
/// the caller's `sink` receives successful results **in run order** (a
/// reorder buffer bridges out-of-order completions). Shared by the static
/// ([`run_point`]) and online (`run_online_point`) campaign runners.
///
/// # Errors
/// Returns the error of the lowest-indexed failing run (the sink may have
/// observed a prefix of results by then — callers discard partial state on
/// error).
pub(crate) fn stream_runs<T, F, S>(runs: usize, f: F, mut sink: S) -> Result<(), ScheduleError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ScheduleError> + Sync,
    S: FnMut(usize, T),
{
    if runs == 0 {
        return Ok(());
    }
    let workers = thread::available_parallelism().map_or(1, |n| n.get()).min(runs);
    let next_run = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, ScheduleError>)>();
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let f = &f;
            let next_run = &next_run;
            scope.spawn(move || loop {
                let r = next_run.fetch_add(1, Ordering::Relaxed);
                if r >= runs {
                    break;
                }
                // A closed channel means the receiver bailed: stop stealing.
                if tx.send((r, f(r))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Reorder buffer: emit to the sink strictly in run order.
        let mut pending: Vec<Option<T>> = (0..runs).map(|_| None).collect();
        let mut next_emit = 0usize;
        let mut first_err: Option<(usize, ScheduleError)> = None;
        for (idx, item) in rx {
            match item {
                Ok(v) => {
                    pending[idx] = Some(v);
                    while next_emit < runs {
                        let Some(v) = pending[next_emit].take() else { break };
                        sink(next_emit, v);
                        next_emit += 1;
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|&(i, _)| idx < i) {
                        first_err = Some((idx, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    })
}

fn one_run(
    cfg: &PointConfig,
    platform: Platform,
    baseline: Variant,
    variants: &[Variant],
    run_idx: usize,
) -> Result<RunResults, ScheduleError> {
    let (workload_seed, fault_seed) = run_seeds(cfg.base_seed, run_idx);
    let workload = generate(&cfg.workload, workload_seed);
    let base_out = execute_variant(baseline, &workload, platform, fault_seed, false)?;
    let mut outcomes = Vec::with_capacity(variants.len());
    for &v in variants {
        if v == baseline {
            outcomes.push(base_out.clone());
        } else {
            outcomes.push(execute_variant(v, &workload, platform, fault_seed, false)?);
        }
    }
    Ok(RunResults { baseline_makespan: base_out.makespan, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_point() -> PointConfig {
        PointConfig {
            workload: WorkloadParams { n: 5, ..WorkloadParams::paper_default(5) },
            p: 20,
            mtbf_years: 8.0,
            downtime: 60.0,
            runs: 3,
            base_seed: 11,
        }
    }

    #[test]
    fn baseline_ratio_is_one() {
        let cfg = tiny_point();
        let stats = run_point(&cfg, Variant::FaultNoRc, &[Variant::FaultNoRc]).unwrap();
        assert!((stats[0].mean_ratio - 1.0).abs() < 1e-12);
        assert_eq!(stats[0].ci95, 0.0);
    }

    #[test]
    fn heuristics_at_most_marginally_worse_than_baseline() {
        let cfg = tiny_point();
        let stats = run_point(
            &cfg,
            Variant::FaultNoRc,
            &[
                Variant::Fault(Heuristic::IteratedGreedyEndLocal),
                Variant::Fault(Heuristic::ShortestTasksFirstEndLocal),
            ],
        )
        .unwrap();
        for s in &stats {
            assert!(s.mean_ratio < 1.3, "{:?} ratio {}", s.variant, s.mean_ratio);
            assert!(s.mean_makespan > 0.0);
        }
    }

    #[test]
    fn fault_free_rc_not_worse_than_fault_free_norc() {
        let cfg = tiny_point();
        let stats = run_point(
            &cfg,
            Variant::FaultFreeNoRc,
            &[Variant::FaultFree(Heuristic::EndLocalOnly)],
        )
        .unwrap();
        assert!(stats[0].mean_ratio <= 1.0 + 1e-9, "ratio {}", stats[0].mean_ratio);
    }

    #[test]
    fn deterministic_across_invocations() {
        let cfg = tiny_point();
        let variants = [Variant::Fault(Heuristic::IteratedGreedyEndLocal)];
        let a = run_point(&cfg, Variant::FaultNoRc, &variants).unwrap();
        let b = run_point(&cfg, Variant::FaultNoRc, &variants).unwrap();
        assert_eq!(a[0].mean_ratio, b[0].mean_ratio);
        assert_eq!(a[0].mean_makespan, b[0].mean_makespan);
    }

    #[test]
    fn streaming_matches_raw_collection() {
        // The streamed Welford aggregation must agree with aggregating the
        // raw per-run outcomes collected with the barrier API.
        let cfg = tiny_point();
        let variants = [Variant::FaultNoRc, Variant::Fault(Heuristic::IteratedGreedyEndLocal)];
        let stats = run_point(&cfg, Variant::FaultNoRc, &variants).unwrap();
        let raw = run_point_raw(&cfg, Variant::FaultNoRc, &variants).unwrap();
        let mut ratio = Welford::new();
        for rr in &raw {
            ratio.push(rr.outcomes[1].makespan / rr.baseline_makespan);
        }
        assert_eq!(stats[1].mean_ratio, ratio.mean());
        assert_eq!(stats[1].ci95, ratio.ci95_half_width());
    }

    #[test]
    fn stream_runs_emits_in_order() {
        let mut seen = Vec::new();
        stream_runs(17, Ok, |idx, v: usize| {
            assert_eq!(idx, v);
            seen.push(v);
        })
        .unwrap();
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn stream_runs_reports_lowest_failing_index() {
        let err = stream_runs(
            9,
            |r| {
                if r >= 3 {
                    Err(ScheduleError::EventLimitExceeded { limit: r as u64 })
                } else {
                    Ok(r)
                }
            },
            |_, _| {},
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::EventLimitExceeded { limit: 3 });
    }

    #[test]
    fn run_seeds_are_distinct() {
        let (w0, f0) = run_seeds(1, 0);
        let (w1, f1) = run_seeds(1, 1);
        assert_ne!(w0, w1);
        assert_ne!(f0, f1);
        assert_ne!(w0, f0);
    }

    #[test]
    fn labels() {
        assert_eq!(Variant::FaultNoRc.label(), "Fault context without RC");
        assert_eq!(
            Variant::FaultFree(Heuristic::EndLocalOnly).label(),
            "Fault-free context with RC (local)"
        );
        assert_eq!(
            Variant::Fault(Heuristic::IteratedGreedyEndGreedy).label(),
            "IteratedGreedy-EndGreedy"
        );
    }

    #[test]
    fn error_propagates() {
        let mut cfg = tiny_point();
        cfg.p = 4; // p < 2n
        let err = run_point(&cfg, Variant::FaultNoRc, &[Variant::FaultNoRc]);
        assert!(err.is_err());
    }
}
