//! Command-line entry point regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <figN|all|table1> [--quick] [--runs N] [--seed S] [--out DIR]
//! ```
//!
//! Markdown renders to stdout; with `--out DIR`, CSV and gnuplot data files
//! are written alongside (`DIR/figN_panelK.{csv,dat}`).

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use redistrib_experiments::extensions;
use redistrib_experiments::figures::{run_figure, FigOpts, FigureReport, ALL_FIGURES};
use redistrib_experiments::online;
use redistrib_experiments::params::table1;
use redistrib_experiments::plot::{render, PlotSize};
use redistrib_experiments::table::Table;

struct Args {
    targets: Vec<String>,
    opts: FigOpts,
    out: Option<PathBuf>,
    plot: bool,
    log: Option<PathBuf>,
    addr: String,
    workers: usize,
    archive_dir: Option<PathBuf>,
    ttl_secs: Option<u64>,
    max_sessions: Option<usize>,
    checkpoint_secs: Option<u64>,
    compact_secs: Option<u64>,
    port_file: Option<PathBuf>,
    backends: usize,
    archive_root: Option<PathBuf>,
    pool_capacity: Option<usize>,
    pool_idle_secs: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut targets = Vec::new();
    let mut opts = FigOpts::default();
    let mut out = None;
    let mut plot = false;
    let mut log = None;
    let mut addr = "127.0.0.1:8079".to_string();
    let mut workers = 4;
    let mut archive_dir = None;
    let mut ttl_secs = None;
    let mut max_sessions = None;
    let mut checkpoint_secs = None;
    let mut compact_secs = None;
    let mut port_file = None;
    let mut backends = 2;
    let mut archive_root = None;
    let mut pool_capacity = None;
    let mut pool_idle_secs = None;
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--plot" => plot = true,
            "--log" => {
                let v = it.next().ok_or("--log needs an SWF file path")?;
                log = Some(PathBuf::from(v));
            }
            "--addr" => {
                addr = it.next().ok_or("--addr needs host:port")?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = v.parse().map_err(|_| format!("bad --workers value: {v}"))?;
            }
            "--archive-dir" => {
                let v = it.next().ok_or("--archive-dir needs a directory path")?;
                archive_dir = Some(PathBuf::from(v));
            }
            "--ttl" => {
                let v = it.next().ok_or("--ttl needs a value in seconds")?;
                ttl_secs = Some(v.parse().map_err(|_| format!("bad --ttl value: {v}"))?);
            }
            "--max-sessions" => {
                let v = it.next().ok_or("--max-sessions needs a value")?;
                max_sessions =
                    Some(v.parse().map_err(|_| format!("bad --max-sessions value: {v}"))?);
            }
            "--checkpoint-interval" => {
                let v = it.next().ok_or("--checkpoint-interval needs a value in seconds")?;
                checkpoint_secs = Some(
                    v.parse().map_err(|_| format!("bad --checkpoint-interval value: {v}"))?,
                );
            }
            "--compact-interval" => {
                let v = it.next().ok_or("--compact-interval needs a value in seconds")?;
                compact_secs =
                    Some(v.parse().map_err(|_| format!("bad --compact-interval value: {v}"))?);
            }
            "--pool-capacity" => {
                let v = it.next().ok_or("--pool-capacity needs a value")?;
                pool_capacity =
                    Some(v.parse().map_err(|_| format!("bad --pool-capacity value: {v}"))?);
            }
            "--pool-idle" => {
                let v = it.next().ok_or("--pool-idle needs a value in seconds")?;
                pool_idle_secs =
                    Some(v.parse().map_err(|_| format!("bad --pool-idle value: {v}"))?);
            }
            "--port-file" => {
                let v = it.next().ok_or("--port-file needs a file path")?;
                port_file = Some(PathBuf::from(v));
            }
            "--backends" => {
                let v = it.next().ok_or("--backends needs a value")?;
                backends = v.parse().map_err(|_| format!("bad --backends value: {v}"))?;
            }
            "--archive-root" => {
                let v = it.next().ok_or("--archive-root needs a directory path")?;
                archive_root = Some(PathBuf::from(v));
            }
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                opts.runs = Some(v.parse().map_err(|_| format!("bad --runs value: {v}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()));
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        return Err(usage());
    }
    Ok(Args {
        targets,
        opts,
        out,
        plot,
        log,
        addr,
        workers,
        archive_dir,
        ttl_secs,
        max_sessions,
        checkpoint_secs,
        compact_secs,
        port_file,
        backends,
        archive_root,
        pool_capacity,
        pool_idle_secs,
    })
}

fn usage() -> String {
    format!(
        "usage: experiments <target…> [--quick] [--plot] [--runs N] [--seed S] [--out DIR]\n\
         \x20      [--log FILE.swf] [--addr HOST:PORT] [--workers N] [--archive-dir DIR]\n\
         \x20      [--ttl SECS] [--max-sessions N] [--checkpoint-interval SECS]\n\
         \x20      [--compact-interval SECS] [--port-file FILE] [--backends N]\n\
         \x20      [--archive-root DIR] [--pool-capacity N] [--pool-idle SECS]\n\
         targets: table1, all, {}, validation, ablation, gap, warm, profiles, silent, online,\n\
         \x20        swf (replays --log through the Session API),\n\
         \x20        serve (hosts the scheduler as an HTTP service on --addr; --archive-dir\n\
         \x20        enables durable checkpoints + crash recovery, --ttl idle eviction,\n\
         \x20        --max-sessions admission shedding, --checkpoint-interval periodic sweeps),\n\
         \x20        serve-backend (one fleet backend: requires --archive-dir, publishes its\n\
         \x20        bound address to --port-file),\n\
         \x20        serve-fleet (supervising router on --addr over --backends N child\n\
         \x20        backends, archives under --archive-root/bK; failed backends restart in\n\
         \x20        place or migrate their checkpointed sessions to survivors)",
        ALL_FIGURES.join(", ")
    )
}

/// Hosts the scheduler-as-a-service HTTP session host until killed (or
/// gracefully drained via `POST /v1/admin/drain`). With `--archive-dir`
/// the host checkpoints sessions to disk and recovers them on restart.
/// With `--port-file` the bound address is published atomically (temp +
/// rename) once the host is up — the `serve-backend` contract a fleet
/// supervisor relies on.
fn serve_forever(args: &Args) -> ExitCode {
    use redistrib_service::{HttpConfig, ServiceConfig, SnapshotArchive, StoreConfig};
    use std::time::Duration;

    let archive = match &args.archive_dir {
        None => None,
        Some(dir) => match SnapshotArchive::open(dir) {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("error opening archive dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
    };
    if archive.is_none()
        && (args.ttl_secs.is_some()
            || args.checkpoint_secs.is_some()
            || args.compact_secs.is_some())
    {
        eprintln!("--ttl, --checkpoint-interval and --compact-interval require --archive-dir");
        return ExitCode::FAILURE;
    }
    let cfg = ServiceConfig {
        http: HttpConfig { workers: args.workers, ..HttpConfig::default() },
        store: StoreConfig {
            archive,
            idle_ttl: args.ttl_secs.map(Duration::from_secs),
            max_sessions: args.max_sessions,
        },
        checkpoint_interval: args.checkpoint_secs.map(Duration::from_secs),
        compact_interval: args.compact_secs.map(Duration::from_secs),
    };
    let (mut host, _store, report) = match redistrib_service::serve_with(&args.addr, cfg) {
        Ok(triple) => triple,
        Err(e) => {
            eprintln!("error binding {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.port_file {
        let tmp = path.with_extension("tmp-addr");
        let published =
            fs::write(&tmp, format!("{}\n", host.addr())).and_then(|()| fs::rename(&tmp, path));
        if let Err(e) = published {
            eprintln!("error writing port file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &args.archive_dir {
        println!(
            "archive {}: recovered {} session(s), quarantined {} file(s)",
            dir.display(),
            report.restored.len(),
            report.quarantined.len()
        );
        for (path, why) in &report.quarantined {
            eprintln!("  quarantined {}: {why}", path.display());
        }
    }
    println!(
        "serving on http://{} ({} workers); Ctrl-C to stop, POST /v1/admin/drain to drain",
        host.addr(),
        args.workers
    );
    while !host.is_draining() {
        std::thread::sleep(Duration::from_millis(200));
    }
    println!("drain requested; finishing in-flight requests and checkpointing");
    host.join();
    ExitCode::SUCCESS
}

/// Boots a supervised multi-backend fleet: `--backends N` child
/// processes (this same binary, `serve-backend` mode), each durable on
/// `--archive-root/bK`, behind a router on `--addr` that shards sessions
/// by rendezvous hash, restarts dead backends in place, and migrates
/// checkpointed sessions off backends that will not come back.
fn serve_fleet(args: &Args) -> ExitCode {
    use redistrib_service::{
        serve_router, BackendSpec, HttpConfig, PoolConfig, ProcessLauncher, RouterConfig,
    };
    use std::time::Duration;

    let Some(root) = &args.archive_root else {
        eprintln!("serve-fleet needs --archive-root DIR (one subdirectory per backend)");
        return ExitCode::FAILURE;
    };
    if args.backends == 0 {
        eprintln!("--backends must be at least 1");
        return ExitCode::FAILURE;
    }
    let program = match env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error resolving own executable path: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut launcher = ProcessLauncher::new(program, vec!["serve-backend".into()]);
    launcher.workers = args.workers;
    let specs: Vec<BackendSpec> = (0..args.backends)
        .map(|k| BackendSpec { name: format!("b{k}"), archive_dir: root.join(format!("b{k}")) })
        .collect();
    let mut pool = PoolConfig::default();
    if let Some(capacity) = args.pool_capacity {
        pool.capacity = capacity;
    }
    if let Some(secs) = args.pool_idle_secs {
        pool.idle_max = Duration::from_secs(secs);
    }
    let cfg = RouterConfig {
        http: HttpConfig { workers: args.workers, ..HttpConfig::default() },
        pool,
        ..RouterConfig::default()
    };
    let mut router = match serve_router(&args.addr, cfg, Box::new(launcher), specs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error booting fleet on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("fleet of {} backend(s) under {}:", args.backends, root.display());
    for backend in router.supervisor().backends() {
        let addr = backend.addr().map_or_else(|| "-".to_string(), |a| format!("http://{a}"));
        println!(
            "  {:<6} {:<24} {}",
            backend.name(),
            addr,
            root.join(backend.name()).display()
        );
    }
    println!(
        "router on http://{} ({} workers); Ctrl-C to stop, POST /v1/admin/drain to drain,\n\
         POST /v1/admin/retire/<backend> to decommission one backend",
        router.addr(),
        args.workers
    );
    while !router.is_draining() {
        std::thread::sleep(Duration::from_millis(200));
    }
    println!("drain requested; backends checkpointed, finishing in-flight requests");
    router.join();
    ExitCode::SUCCESS
}

fn emit(report: &FigureReport, out: Option<&PathBuf>, plot: bool) -> std::io::Result<()> {
    println!("## {} ({})\n", report.title, report.id);
    for (k, table) in report.tables.iter().enumerate() {
        println!("{}", table.to_markdown());
        if plot {
            if let Some(chart) = render(table, PlotSize::default()) {
                println!("{chart}");
            }
        }
        if let Some(dir) = out {
            fs::create_dir_all(dir)?;
            let stem = if report.tables.len() > 1 {
                format!("{}_panel{}", report.id, (b'a' + k as u8) as char)
            } else {
                report.id.to_string()
            };
            fs::write(dir.join(format!("{stem}.csv")), table.to_csv())?;
            fs::write(dir.join(format!("{stem}.dat")), table.to_gnuplot())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    for mode in ["serve", "serve-backend", "serve-fleet"] {
        if args.targets.iter().any(|t| t == mode) {
            if args.targets.len() > 1 {
                eprintln!("{mode} cannot be combined with other targets");
                return ExitCode::FAILURE;
            }
            if mode == "serve-backend" && args.archive_dir.is_none() {
                eprintln!(
                    "serve-backend needs --archive-dir DIR (its durable checkpoint home)"
                );
                return ExitCode::FAILURE;
            }
            return if mode == "serve-fleet" {
                serve_fleet(&args)
            } else {
                serve_forever(&args)
            };
        }
    }

    let mut targets: Vec<String> = Vec::new();
    for t in &args.targets {
        if t == "all" {
            targets.extend(ALL_FIGURES.iter().map(ToString::to_string));
            targets.push("table1".into());
        } else {
            targets.push(t.clone());
        }
    }

    for target in targets {
        let extension: Option<Result<Table, String>> = match target.as_str() {
            "validation" => Some(Ok(extensions::validation_table(
                if args.opts.quick { 100 } else { 2000 },
                args.opts.seed,
            ))),
            "ablation" => Some(
                extensions::ablation_table(args.opts.resolve_runs_public(), args.opts.seed)
                    .map_err(|e| e.to_string()),
            ),
            "gap" => Some(
                extensions::gap_table(if args.opts.quick { 4 } else { 12 }, args.opts.seed)
                    .map_err(|e| e.to_string()),
            ),
            "warm" => Some(
                extensions::warm_table(args.opts.resolve_runs_public(), args.opts.seed)
                    .map_err(|e| e.to_string()),
            ),
            "profiles" => {
                Some(extensions::profiles_table(args.opts.seed).map_err(|e| e.to_string()))
            }
            "silent" => Some(Ok(extensions::silent_table(
                if args.opts.quick { 100 } else { 1000 },
                args.opts.seed,
            ))),
            "online" => Some(
                online::campaign_table(args.opts.quick, args.opts.runs, args.opts.seed)
                    .map_err(|e| e.to_string()),
            ),
            // Real-log replay through the Session API; shares the generic
            // table-print / --out handling below.
            "swf" => Some(args.log.as_ref().map_or_else(
                || Err(format!("the swf target needs --log FILE.swf\n{}", usage())),
                |path| {
                    let text = fs::read_to_string(path)
                        .map_err(|e| format!("error reading {}: {e}", path.display()))?;
                    let label = path.file_name().map_or_else(
                        || path.display().to_string(),
                        |n| n.to_string_lossy().into_owned(),
                    );
                    online::swf_campaign_table(&text, &label, args.opts.runs, args.opts.seed)
                },
            )),
            _ => None,
        };
        if let Some(result) = extension {
            match result {
                Ok(t) => {
                    println!("{}", t.to_markdown());
                    if let Some(dir) = &args.out {
                        if let Err(e) = fs::create_dir_all(dir).and_then(|()| {
                            fs::write(dir.join(format!("{target}.csv")), t.to_csv())
                        }) {
                            eprintln!("error writing {target}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error running {target}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        if target == "table1" {
            let t = table1();
            println!("{}", t.to_markdown());
            if let Some(dir) = &args.out {
                if let Err(e) = fs::create_dir_all(dir)
                    .and_then(|()| fs::write(dir.join("table1.csv"), t.to_csv()))
                {
                    eprintln!("error writing table1: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        eprintln!(
            "running {target} ({} mode)…",
            if args.opts.quick { "quick" } else { "full" }
        );
        match run_figure(&target, &args.opts) {
            Ok(Some(report)) => {
                if let Err(e) = emit(&report, args.out.as_ref(), args.plot) {
                    eprintln!("error writing {target}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Ok(None) => {
                eprintln!("unknown target {target}\n{}", usage());
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error running {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
