//! Workload generation (§6.1 of the paper).
//!
//! Each task receives a data size `m_i` drawn uniformly from
//! `[m_inf, m_sup]`; execution times follow the synthetic model of Eq. 10
//! with sequential fraction `f`; the sequential checkpoint cost is
//! `C_i = c·m_i`.

use std::sync::Arc;

use redistrib_model::{PaperModel, TaskSpec, Workload};
use redistrib_sim::rng::Xoshiro256;

/// Parameters of one generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Number of tasks `n`.
    pub n: usize,
    /// Lower bound of the data-size distribution (`minf`; paper default
    /// 1 500 000 — "homogeneous"; 1 500 for the heterogeneous setting).
    pub m_inf: f64,
    /// Upper bound of the data-size distribution (`msup`; paper default
    /// 2 500 000).
    pub m_sup: f64,
    /// Sequential fraction `f` of Eq. 10 (default 0.08).
    pub seq_fraction: f64,
    /// Checkpoint time per data unit `c` (default 1).
    pub ckpt_unit: f64,
}

impl WorkloadParams {
    /// Paper defaults: `minf = 1.5e6`, `msup = 2.5e6`, `f = 0.08`, `c = 1`.
    #[must_use]
    pub fn paper_default(n: usize) -> Self {
        Self { n, m_inf: 1_500_000.0, m_sup: 2_500_000.0, seq_fraction: 0.08, ckpt_unit: 1.0 }
    }

    /// Heterogeneous variant of Figs. 5b/6b: `minf = 1 500`.
    #[must_use]
    pub fn heterogeneous(n: usize) -> Self {
        Self { m_inf: 1_500.0, ..Self::paper_default(n) }
    }
}

/// Generates the workload of run `seed` (deterministic in
/// `(params, seed)`).
///
/// # Panics
/// Panics if the parameters are degenerate (`n == 0`, empty size range,
/// invalid fraction).
#[must_use]
pub fn generate(params: &WorkloadParams, seed: u64) -> Workload {
    assert!(params.n > 0, "need at least one task");
    assert!(
        params.m_inf > 1.0 && params.m_sup >= params.m_inf,
        "invalid size range [{}, {}]",
        params.m_inf,
        params.m_sup
    );
    // Stream id: ASCII "WORK" — keeps workload draws disjoint from fault
    // streams derived from the same seed.
    let mut rng = Xoshiro256::stream(seed, 0x574F_524B);
    let tasks = (0..params.n)
        .map(|_| {
            let m = rng.uniform(params.m_inf, params.m_sup);
            TaskSpec::with_ckpt_unit(m, params.ckpt_unit)
        })
        .collect();
    Workload::new(tasks, Arc::new(PaperModel::new(params.seq_fraction)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_within_bounds() {
        let p = WorkloadParams::paper_default(200);
        let w = generate(&p, 42);
        assert_eq!(w.len(), 200);
        for t in &w.tasks {
            assert!(t.size >= p.m_inf && t.size <= p.m_sup);
            assert_eq!(t.ckpt_unit, 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadParams::paper_default(50);
        let a = generate(&p, 7);
        let b = generate(&p, 7);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.size, y.size);
        }
        let c = generate(&p, 8);
        assert!(a.tasks.iter().zip(&c.tasks).any(|(x, y)| x.size != y.size));
    }

    #[test]
    fn heterogeneous_spreads_widely() {
        let p = WorkloadParams::heterogeneous(500);
        let w = generate(&p, 3);
        let min = w.tasks.iter().map(|t| t.size).fold(f64::INFINITY, f64::min);
        let max = w.tasks.iter().map(|t| t.size).fold(0.0, f64::max);
        assert!(max / min > 10.0, "heterogeneous range should spread: {min}..{max}");
    }
}
