//! Integration tests of the `experiments` binary itself.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    assert!(stderr.contains("fig5"));
}

#[test]
fn unknown_target_fails() {
    let out = bin().arg("fig99").output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn unknown_flag_fails() {
    let out = bin().args(["fig5", "--bogus"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn table1_renders() {
    let out = bin().arg("table1").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"));
    assert!(stdout.contains("MTBF of one processor"));
}

#[test]
fn quick_figure_with_csv_output() {
    let dir = std::env::temp_dir().join(format!("redistrib-cli-{}", std::process::id()));
    let out = bin()
        .args(["fig12", "--quick", "--runs", "2", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 12"));
    let csv = std::fs::read_to_string(dir.join("fig12.csv")).expect("csv written");
    assert!(csv.starts_with("c (checkpoint cost per data unit),"));
    let dat = std::fs::read_to_string(dir.join("fig12.dat")).expect("dat written");
    assert!(dat.starts_with("# Figure 12"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plot_flag_renders_chart() {
    let out =
        bin().args(["fig12", "--quick", "--runs", "2", "--plot"]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("o Fault context without RC"), "missing legend:\n{stdout}");
}

#[test]
fn seed_flag_changes_output() {
    let run = |seed: &str| {
        let out = bin()
            .args(["fig12", "--quick", "--runs", "2", "--seed", seed])
            .output()
            .expect("spawn");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run("1");
    let b = run("2");
    let a_again = run("1");
    assert_eq!(a, a_again, "same seed must reproduce byte-identical output");
    assert_ne!(a, b, "different seeds must differ");
}

#[test]
fn online_campaign_runs_and_reproduces() {
    let run = || {
        let out = bin()
            .args(["online", "--quick", "--runs", "2", "--seed", "3"])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    assert!(a.contains("Online campaign"), "missing title:\n{a}");
    assert!(a.contains("NoRedistribution"));
    assert!(a.contains("IteratedGreedy-EndLocal+arrival"));
    let b = run();
    assert_eq!(a, b, "same seed must reproduce byte-identical output");
}

#[test]
fn gap_extension_runs() {
    let out = bin().args(["gap", "--quick"]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("optimality gap"));
}

#[test]
fn warm_extension_measures_approximate_variant() {
    let out = bin().args(["warm", "--runs", "2", "--seed", "5"]).output().expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("approximate WarmGreedy vs exact"), "missing title:\n{stdout}");
    assert!(stdout.contains("WarmGreedy"));
    assert!(stdout.contains("IteratedGreedy-EndGreedy"));
}

#[test]
fn swf_target_replays_real_log() {
    // The same Parallel Workloads Archive fixture the online crate's SWF
    // parser tests use, replayed end to end through the Session API.
    let fixture = include_str!("../../online/tests/fixtures/tiny.swf");
    let dir = std::env::temp_dir().join(format!("redistrib-swf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let log = dir.join("tiny.swf");
    std::fs::write(&log, fixture).expect("write fixture");
    let out = bin()
        .args(["swf", "--runs", "2", "--seed", "9", "--log"])
        .arg(&log)
        .arg("--out")
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SWF replay: tiny.swf"), "missing title:\n{stdout}");
    assert!(stdout.contains("WarmGreedy+arrival"), "approximate variant missing:\n{stdout}");
    let csv = std::fs::read_to_string(dir.join("swf.csv")).expect("csv written");
    assert!(csv.starts_with("strategy,"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swf_target_without_log_fails_with_hint() {
    let out = bin().arg("swf").output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--log"), "stderr: {stderr}");
}
