//! # redistrib-core
//!
//! Scheduling algorithms of *Resilient application co-scheduling with
//! processor redistribution* (Benoit, Pottier, Robert; ICPP 2016):
//!
//! * [`optimal`] — Algorithm 1, the optimal schedule without redistribution
//!   (Theorem 1);
//! * [`engine`] — Algorithm 2, the event-driven execution engine with fault
//!   injection;
//! * [`policies`] — the redistribution heuristics: `EndLocal` (Algorithm 3),
//!   `EndGreedy`, `ShortestTasksFirst` (Algorithm 4), `IteratedGreedy`
//!   (Algorithm 5), and the no-redistribution baselines;
//! * [`exact`] — brute-force optimal solvers for small instances, used to
//!   validate Algorithm 1 and measure heuristic optimality gaps;
//! * [`npc`] — the Theorem 2 reduction from 3-partition, as an executable
//!   gadget (instance builder + schedule verifier).
//!
//! The crate is deterministic end to end: same workload, same seed, same
//! policy ⇒ same outcome.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ctx;
pub mod engine;
pub mod error;
pub mod exact;
pub mod heap;
pub mod incremental;
pub mod npc;
pub mod optimal;
pub mod policies;
pub mod state;

pub use ctx::{EligibleSet, HeuristicCtx, Plan, PlanEntry, PolicyScratch};
pub use engine::{run, EngineConfig, FaultConfig, RunOutcome};
pub use error::ScheduleError;
pub use heap::{LazyMaxHeap, LazyMinHeap};
pub use incremental::{
    greedy_floor, greedy_floor_key, GreedyWarmStats, IncrementalState, SessionOverlay,
};
pub use optimal::optimal_schedule;
pub use policies::{
    greedy_rebuild, greedy_rebuild_warm, EndGreedy, EndGreedyWarm, EndLocal, EndPolicy,
    FaultPolicy, Heuristic, IteratedGreedy, IteratedGreedyWarm, NoEndRedistribution,
    NoFaultRedistribution, ShortestTasksFirst,
};
pub use state::{PackState, PackStateSnapshot, TaskRuntime};
