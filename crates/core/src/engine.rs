//! Algorithm 2: the event-driven co-scheduling engine.
//!
//! Simulates the execution of one pack on a failure-prone platform:
//!
//! 1. the initial allocation comes from Algorithm 1
//!    ([`crate::optimal::optimal_schedule`]);
//! 2. events are task *ends* (at the current expected finish times `t^U_i`)
//!    and processor *faults* (from policy-independent per-processor
//!    streams);
//! 3. at a task end, the end policy may redistribute the released
//!    processors; at a fault, the struck task rolls back to its last
//!    checkpoint, pays downtime + recovery, and — if it became the longest
//!    task — the fault policy may redistribute processors toward it.
//!
//! See DESIGN.md ("Event-loop semantics") for how the paper's pseudocode
//! ambiguities are resolved; every resolution is flagged in the code below.

use redistrib_model::{ExecutionMode, TaskId, TimeCalc};
use redistrib_sim::dist::FaultLaw;
use redistrib_sim::faults::FaultSource;
use redistrib_sim::trace::{TraceEvent, TraceLog};

use crate::ctx::{EligibleSet, HeuristicCtx, PolicyScratch};
use crate::error::ScheduleError;
use crate::optimal::optimal_schedule;
use crate::policies::{EndPolicy, FaultPolicy};
use crate::state::PackState;

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the per-processor fault streams (same seed ⇒ same trace,
    /// whatever the policy).
    pub seed: u64,
    /// Inter-arrival law (the paper: exponential with the platform MTBF).
    pub law: FaultLaw,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Fault injection; `None` runs without failures (required when the
    /// calculator is in fault-free mode).
    pub faults: Option<FaultConfig>,
    /// Record a full event trace (Fig. 9 series). Off for large sweeps.
    pub record_trace: bool,
    /// Ablation: reproduce the literal pseudocode of Algorithms 4–5, which
    /// omits downtime + recovery from the faulty task's candidate finish
    /// times (biasing toward redistribution). Default `false` (§3.3.2 text).
    pub pseudocode_fault_bias: bool,
    /// Run the policies through the from-scratch reference path (an
    /// eligible list materialized per event) instead of the incremental
    /// live view. Slower; kept for equivalence testing — outcomes are
    /// byte-identical by construction.
    pub reference_policies: bool,
    /// Safety cap on processed events.
    pub max_events: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            faults: None,
            record_trace: false,
            pseudocode_fault_bias: false,
            reference_policies: false,
            max_events: 100_000_000,
        }
    }
}

impl EngineConfig {
    /// Fault-free configuration (no failures injected).
    #[must_use]
    pub fn fault_free() -> Self {
        Self::default()
    }

    /// Configuration with exponential faults of the given per-processor
    /// MTBF (seconds), seeded for replay.
    #[must_use]
    pub fn with_faults(seed: u64, proc_mtbf: f64) -> Self {
        Self {
            faults: Some(FaultConfig { seed, law: FaultLaw::Exponential { mtbf: proc_mtbf } }),
            ..Self::default()
        }
    }

    /// Enables trace recording.
    #[must_use]
    pub fn recording(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Result of one simulated execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Completion time of the last task (the pack's makespan).
    pub makespan: f64,
    /// Faults that struck a running task and were handled.
    pub handled_faults: u64,
    /// Faults discarded (idle processor, or protected
    /// downtime/recovery/redistribution window).
    pub discarded_faults: u64,
    /// Discarded faults that would have struck a task inside its post-fault
    /// recovery window — the double-checkpointing "fatal risk" events
    /// (§2.2; the paper's simulations ignore fatality, so do we, but we
    /// count the exposure).
    pub fatal_risk_events: u64,
    /// Committed reallocations (one per task whose σ changed).
    pub redistributions: u64,
    /// The Algorithm 1 allocation the run started from.
    pub initial_allocation: Vec<u32>,
    /// Event trace (empty unless `record_trace`).
    pub trace: TraceLog,
}

/// Runs one pack to completion under the given policies.
///
/// # Errors
/// [`ScheduleError::InsufficientProcessors`] if the platform cannot host the
/// pack; [`ScheduleError::EventLimitExceeded`] if the safety cap is hit.
///
/// # Panics
/// Panics if faults are configured while the calculator is in fault-free
/// mode (inconsistent setup).
pub fn run(
    calc: &TimeCalc,
    end_policy: &dyn EndPolicy,
    fault_policy: &dyn FaultPolicy,
    cfg: &EngineConfig,
) -> Result<RunOutcome, ScheduleError> {
    assert!(
        !(matches!(calc.mode(), ExecutionMode::FaultFree) && cfg.faults.is_some()),
        "fault injection requires a fault-aware calculator"
    );
    let p = calc.platform().num_procs;
    let n = calc.num_tasks();

    let sigma = optimal_schedule(calc, p)?;
    let mut state = PackState::new(p, &sigma);
    for (i, &s) in sigma.iter().enumerate() {
        state.set_t_u(i, calc.remaining(i, s, 1.0));
    }

    let mut faults: Option<FaultSource> =
        cfg.faults.map(|fc| FaultSource::new(fc.seed, p, fc.law));
    let mut trace = if cfg.record_trace { TraceLog::enabled() } else { TraceLog::disabled() };
    let mut redistributions = 0u64;
    let mut handled_faults = 0u64;
    let mut discarded_faults = 0u64;
    let mut fatal_risk_events = 0u64;
    // Per-task end of the post-fault recovery window, for fatal-risk
    // accounting.
    let mut recovery_until = vec![0.0f64; n];
    // Reusable event-loop buffers: steady-state events allocate nothing.
    let mut eligible: Vec<TaskId> = Vec::new();
    let mut finishing: Vec<TaskId> = Vec::new();
    let mut scratch = PolicyScratch::default();

    let mut events = 0u64;
    while state.active_count() > 0 {
        events += 1;
        if events > cfg.max_events {
            return Err(ScheduleError::EventLimitExceeded { limit: cfg.max_events });
        }

        let (end_task, t_end) = state.earliest_active().expect("active tasks remain");
        let t_fault = faults.as_ref().and_then(FaultSource::peek_time);

        if t_fault.is_none_or(|tf| t_end <= tf) {
            // ---- Task end event -------------------------------------------------
            state.complete(end_task, t_end);
            trace.push(TraceEvent::TaskEnd { time: t_end, task: end_task });
            if state.active_count() > 0 && state.free_count() >= 2 && !end_policy.is_noop() {
                // Participants exclude tasks still inside a previous
                // redistribution window (Algorithm 2 line 15) — derived
                // lazily by the incremental policies, or materialized here
                // for the reference path.
                let eligible_set = if cfg.reference_policies {
                    eligible.clear();
                    eligible.extend(
                        state.active_tasks().filter(|&i| state.runtime(i).t_last_r <= t_end),
                    );
                    EligibleSet::Listed(&eligible)
                } else {
                    EligibleSet::live()
                };
                let mut ctx = HeuristicCtx {
                    calc,
                    state: &mut state,
                    trace: &mut trace,
                    now: t_end,
                    eligible: eligible_set,
                    scratch: &mut scratch,
                    pseudocode_fault_bias: cfg.pseudocode_fault_bias,
                    redistributions: &mut redistributions,
                };
                end_policy.on_task_end(&mut ctx);
            }
        } else {
            // ---- Fault event ----------------------------------------------------
            let fault = faults
                .as_mut()
                .expect("t_fault was Some")
                .next_fault()
                .expect("stream is infinite");
            let t = fault.time;
            let struck = state.owner(fault.proc);
            let Some(f) = struck else {
                // Idle processor: nothing to lose.
                discarded_faults += 1;
                trace.push(TraceEvent::FaultDiscarded { time: t, proc: fault.proc });
                continue;
            };
            if t < state.runtime(f).t_last_r {
                // Protected window: downtime/recovery/redistribution in
                // progress (§6.1: failures cannot strike there).
                discarded_faults += 1;
                if t < recovery_until[f] {
                    fatal_risk_events += 1;
                }
                trace.push(TraceEvent::FaultDiscarded { time: t, proc: fault.proc });
                continue;
            }

            handled_faults += 1;
            // Roll the faulty task back to its last checkpoint (Algorithm 2
            // lines 23–26).
            let j = state.sigma(f);
            let elapsed = t - state.runtime(f).t_last_r;
            let retained = calc.progress_faulty(f, j, elapsed);
            let d = calc.downtime();
            let r = calc.recovery_time(f, j);
            let anchor = t + d + r;
            {
                let rt = state.runtime_mut(f);
                rt.alpha = (rt.alpha - retained).max(0.0);
                rt.t_last_r = anchor;
            }
            let remaining = calc.remaining(f, j, state.runtime(f).alpha);
            state.set_t_u(f, anchor + remaining);
            recovery_until[f] = anchor;
            trace.push(TraceEvent::Fault { time: t, proc: fault.proc, task: f });

            // Tasks that finish during the recovery window complete now and
            // release their processors (Algorithm 2 line 28). The faulty
            // task's own finish time is ≥ `anchor` by construction, so the
            // queue drain never returns it.
            state.drain_ending_before(anchor, &mut finishing);
            for &i in &finishing {
                let tu = state.runtime(i).t_u;
                state.complete(i, tu);
                trace.push(TraceEvent::TaskEnd { time: tu, task: i });
            }

            // Invoke the fault policy only if the faulty task is now the
            // longest (Algorithm 2 line 30) — an O(1) amortized
            // latest-queue peek instead of a linear scan.
            let tu_f = state.runtime(f).t_u;
            let is_longest = state.none_later_than(tu_f);
            if is_longest && !fault_policy.is_noop() {
                let eligible_set = if cfg.reference_policies {
                    eligible.clear();
                    eligible.extend(
                        state
                            .active_tasks()
                            .filter(|&i| i != f && state.runtime(i).t_last_r <= t),
                    );
                    EligibleSet::Listed(&eligible)
                } else {
                    EligibleSet::live_fault(f, f64::NEG_INFINITY)
                };
                let mut ctx = HeuristicCtx {
                    calc,
                    state: &mut state,
                    trace: &mut trace,
                    now: t,
                    eligible: eligible_set,
                    scratch: &mut scratch,
                    pseudocode_fault_bias: cfg.pseudocode_fault_bias,
                    redistributions: &mut redistributions,
                };
                fault_policy.on_fault(&mut ctx, f);
            }
            if trace.is_enabled() {
                // The Fig. 9 per-fault snapshot costs O(n) + a stddev pass:
                // only compute it when a trace is actually recorded.
                let makespan = state.makespan_estimate();
                let stddev = state.alloc_stddev();
                trace.push(TraceEvent::MakespanEstimate {
                    time: t,
                    makespan,
                    alloc_stddev: stddev,
                });
            }
        }
    }

    let makespan = state.makespan_estimate();
    Ok(RunOutcome {
        makespan,
        handled_faults,
        discarded_faults,
        fatal_risk_events,
        redistributions,
        initial_allocation: sigma,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{
        EndGreedy, EndLocal, Heuristic, IteratedGreedy, NoEndRedistribution,
        NoFaultRedistribution, ShortestTasksFirst,
    };
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::units;
    use std::sync::Arc;

    fn workload(n: usize, seed: u64) -> Workload {
        // Small deterministic spread of sizes.
        let tasks = (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f64;
                TaskSpec::new(1.5e6 + 1000.0 * x)
            })
            .collect();
        Workload::new(tasks, Arc::new(PaperModel::default()))
    }

    fn fault_calc(n: usize, p: u32, mtbf_years: f64) -> TimeCalc {
        TimeCalc::new(workload(n, 7), Platform::with_mtbf(p, units::years(mtbf_years)))
    }

    #[test]
    fn fault_free_run_completes() {
        let calc = TimeCalc::fault_free(workload(5, 1), Platform::new(20));
        let out = run(
            &calc,
            &NoEndRedistribution,
            &NoFaultRedistribution,
            &EngineConfig::fault_free(),
        )
        .unwrap();
        assert!(out.makespan > 0.0);
        assert_eq!(out.handled_faults, 0);
        assert_eq!(out.redistributions, 0);
    }

    #[test]
    fn fault_free_makespan_equals_alg1_prediction() {
        // Without redistribution and without faults, the makespan is the
        // longest initial expected time.
        let calc = TimeCalc::fault_free(workload(4, 2), Platform::new(16));
        let sigma = optimal_schedule(&calc, 16).unwrap();
        let predicted = sigma
            .iter()
            .enumerate()
            .map(|(i, &s)| calc.remaining(i, s, 1.0))
            .fold(0.0, f64::max);
        let out = run(
            &calc,
            &NoEndRedistribution,
            &NoFaultRedistribution,
            &EngineConfig::fault_free(),
        )
        .unwrap();
        assert!((out.makespan - predicted).abs() / predicted < 1e-12);
    }

    #[test]
    fn fault_free_redistribution_never_hurts() {
        for n in [3usize, 6, 10] {
            let base = TimeCalc::fault_free(workload(n, 3), Platform::new(40));
            let without = run(
                &base,
                &NoEndRedistribution,
                &NoFaultRedistribution,
                &EngineConfig::fault_free(),
            )
            .unwrap();
            let with = TimeCalc::fault_free(workload(n, 3), Platform::new(40));
            let with_rc =
                run(&with, &EndLocal, &NoFaultRedistribution, &EngineConfig::fault_free())
                    .unwrap();
            assert!(
                with_rc.makespan <= without.makespan * (1.0 + 1e-9),
                "n={n}: RC {} vs no-RC {}",
                with_rc.makespan,
                without.makespan
            );
        }
    }

    #[test]
    fn faulty_run_completes_and_counts_faults() {
        let calc = fault_calc(5, 20, 3.0);
        let out = run(
            &calc,
            &NoEndRedistribution,
            &NoFaultRedistribution,
            &EngineConfig::with_faults(11, units::years(3.0)),
        )
        .unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.handled_faults > 0, "a 3-year MTBF must produce faults");
    }

    #[test]
    fn faults_inflate_makespan() {
        let ff = fault_calc(5, 20, 100.0);
        let no_faults =
            run(&ff, &NoEndRedistribution, &NoFaultRedistribution, &EngineConfig::fault_free())
                .unwrap();
        let fa = fault_calc(5, 20, 100.0);
        let with_faults = run(
            &fa,
            &NoEndRedistribution,
            &NoFaultRedistribution,
            &EngineConfig::with_faults(13, units::years(2.0)),
        )
        .unwrap();
        assert!(with_faults.makespan >= no_faults.makespan);
    }

    #[test]
    fn deterministic_replay() {
        for heuristic in
            [Heuristic::IteratedGreedyEndLocal, Heuristic::ShortestTasksFirstEndLocal]
        {
            let cfg = EngineConfig::with_faults(42, units::years(5.0));
            let c1 = fault_calc(6, 24, 5.0);
            let o1 =
                run(&c1, &*heuristic.end_policy(), &*heuristic.fault_policy(), &cfg).unwrap();
            let c2 = fault_calc(6, 24, 5.0);
            let o2 =
                run(&c2, &*heuristic.end_policy(), &*heuristic.fault_policy(), &cfg).unwrap();
            assert_eq!(o1.makespan, o2.makespan);
            assert_eq!(o1.handled_faults, o2.handled_faults);
            assert_eq!(o1.redistributions, o2.redistributions);
        }
    }

    #[test]
    fn policies_redistribute_under_faults() {
        let cfg = EngineConfig::with_faults(7, units::years(4.0));
        let calc = fault_calc(6, 24, 4.0);
        let out = run(&calc, &EndLocal, &IteratedGreedy, &cfg).unwrap();
        assert!(
            out.redistributions > 0,
            "IG should redistribute on some of the {} faults",
            out.handled_faults
        );
    }

    #[test]
    fn stf_runs_under_faults() {
        let cfg = EngineConfig::with_faults(19, units::years(4.0));
        let calc = fault_calc(6, 24, 4.0);
        let out = run(&calc, &EndGreedy, &ShortestTasksFirst, &cfg).unwrap();
        assert!(out.makespan.is_finite());
    }

    #[test]
    fn approx_warm_greedy_runs_and_replays() {
        // The opt-in approximate WarmGreedy combination (resume-from-
        // committed, grow-only) must complete under fault pressure,
        // redistribute at task ends (free pairs flow to the longest
        // planned finish times) and replay deterministically — there is no
        // reference equivalence to assert, that is the point of the
        // variant.
        let h = Heuristic::WarmGreedy;
        let cfg = EngineConfig::with_faults(23, units::years(4.0)).recording();
        let c1 = fault_calc(6, 28, 4.0);
        let o1 = run(&c1, &*h.end_policy(), &*h.fault_policy(), &cfg).unwrap();
        let c2 = fault_calc(6, 28, 4.0);
        let o2 = run(&c2, &*h.end_policy(), &*h.fault_policy(), &cfg).unwrap();
        assert!(o1.makespan.is_finite() && o1.makespan > 0.0);
        assert!(o1.redistributions > 0, "task ends must trigger warm grants");
        assert_eq!(o1.makespan.to_bits(), o2.makespan.to_bits());
        assert_eq!(o1.redistributions, o2.redistributions);
        assert_eq!(o1.trace.to_csv(), o2.trace.to_csv());
    }

    #[test]
    fn trace_recording() {
        let cfg = EngineConfig::with_faults(3, units::years(4.0)).recording();
        let calc = fault_calc(4, 16, 4.0);
        let out = run(&calc, &EndLocal, &IteratedGreedy, &cfg).unwrap();
        assert_eq!(out.trace.fault_count() as u64, out.handled_faults);
        assert_eq!(out.trace.redistribution_count() as u64, out.redistributions);
        // One makespan snapshot per handled fault.
        assert_eq!(out.trace.makespan_series().count() as u64, out.handled_faults);
        // Task ends are recorded for every task.
        let ends = out
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::TaskEnd { .. }))
            .count();
        assert_eq!(ends, 4);
    }

    #[test]
    fn insufficient_processors_error() {
        let calc = fault_calc(5, 8, 100.0);
        let err = run(
            &calc,
            &NoEndRedistribution,
            &NoFaultRedistribution,
            &EngineConfig::fault_free(),
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::InsufficientProcessors { needed: 10, available: 8 });
    }

    #[test]
    #[should_panic(expected = "fault injection requires a fault-aware calculator")]
    fn fault_free_calc_with_faults_panics() {
        let calc = TimeCalc::fault_free(workload(2, 1), Platform::new(8));
        let _ = run(
            &calc,
            &NoEndRedistribution,
            &NoFaultRedistribution,
            &EngineConfig::with_faults(1, units::years(1.0)),
        );
    }

    #[test]
    fn same_seed_same_fault_exposure_across_policies() {
        // The fault *trace* is policy-independent; the number of handled
        // faults may differ (different allocations), but the engine must
        // consume the identical stream. We check replay instead: two
        // different policies, same seed, still deterministic per policy.
        let cfg = EngineConfig::with_faults(77, units::years(5.0));
        let a1 = fault_calc(5, 20, 5.0);
        let a2 = fault_calc(5, 20, 5.0);
        let r1 = run(&a1, &EndLocal, &ShortestTasksFirst, &cfg).unwrap();
        let r2 = run(&a2, &EndLocal, &ShortestTasksFirst, &cfg).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn event_limit_guard() {
        let calc = fault_calc(3, 12, 100.0);
        let cfg = EngineConfig { max_events: 2, ..EngineConfig::fault_free() };
        let err = run(&calc, &NoEndRedistribution, &NoFaultRedistribution, &cfg).unwrap_err();
        assert_eq!(err, ScheduleError::EventLimitExceeded { limit: 2 });
    }
}
