//! Runtime state of a pack under execution: per-task bookkeeping and the
//! explicit processor-to-task assignment.
//!
//! The paper reasons about allocation *sizes* `σ(i)`; the simulator also
//! tracks *which* physical processors belong to each task, because faults
//! strike processor ids (§3.1: the MTBF of a task on `j` processors is
//! `µ/j`, which emerges mechanically from per-processor fault streams).
//! Processor moves are deterministic — lowest free ids are assigned first,
//! highest owned ids are released first — so runs are exactly reproducible.

use redistrib_model::TaskId;
use redistrib_sim::stddev_population;

use crate::error::ScheduleError;
use crate::heap::{LazyMaxHeap, LazyMinHeap};

/// The pool of free processor ids, as a fixed-size bitset with a
/// first-set-word hint: `take_lowest`/`insert` are the commit path's
/// per-processor operations, and the bitset makes them O(1) amortized
/// where the former `BTreeSet<u32>` paid a tree walk per id. Identical
/// deterministic semantics: ids leave lowest-first and re-enter anywhere.
#[derive(Debug, Clone, Default)]
struct FreePool {
    words: Vec<u64>,
    count: u32,
    /// Index of the lowest word that may contain a set bit.
    hint: usize,
}

impl FreePool {
    fn new(p: u32) -> Self {
        Self { words: vec![0; (p as usize).div_ceil(64)], count: 0, hint: 0 }
    }

    fn len(&self) -> u32 {
        self.count
    }

    fn insert(&mut self, k: u32) {
        let w = (k / 64) as usize;
        let bit = 1u64 << (k % 64);
        debug_assert_eq!(self.words[w] & bit, 0, "processor {k} freed twice");
        self.words[w] |= bit;
        self.count += 1;
        self.hint = self.hint.min(w);
    }

    /// Removes the `n` lowest free ids, appending them in ascending order.
    ///
    /// # Panics
    /// Panics if fewer than `n` ids are free.
    fn take_lowest_n(&mut self, n: u32, out: &mut Vec<u32>) {
        let mut remaining = n;
        while remaining > 0 {
            assert!(self.hint < self.words.len(), "free pool is empty");
            let before = self.words[self.hint];
            if before == 0 {
                self.hint += 1;
                continue;
            }
            let base = self.hint as u32 * 64;
            let mut bits = before;
            while bits != 0 && remaining > 0 {
                out.push(base + bits.trailing_zeros());
                bits &= bits - 1; // clear lowest set bit
                remaining -= 1;
            }
            self.count -= before.count_ones() - bits.count_ones();
            self.words[self.hint] = bits;
        }
    }

    /// Ascending iteration (invariant checks and tests).
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| wi as u32 * 64 + b)
        })
    }
}

/// Per-task runtime bookkeeping (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRuntime {
    /// Remaining fraction of work `α_i ∈ [0, 1]`.
    pub alpha: f64,
    /// Anchor `tlastR_i`: time of the last redistribution or failure (plus
    /// its overheads); work accounting restarts from a period boundary here.
    pub t_last_r: f64,
    /// Current expected finish time `t^U_i` (absolute).
    pub t_u: f64,
    /// Whether the task has completed.
    pub done: bool,
    /// Completion time (meaningful once `done`).
    pub completion_time: f64,
}

impl TaskRuntime {
    fn initial() -> Self {
        Self { alpha: 1.0, t_last_r: 0.0, t_u: 0.0, done: false, completion_time: 0.0 }
    }
}

/// Mutable state of a pack: task runtimes plus the processor assignment.
#[derive(Debug, Clone)]
pub struct PackState {
    runtimes: Vec<TaskRuntime>,
    /// `proc_owner[k]` is the task currently running on processor `k`.
    proc_owner: Vec<Option<TaskId>>,
    /// Ascending processor ids owned by each task.
    task_procs: Vec<Vec<u32>>,
    /// Free processors.
    free: FreePool,
    /// Number of tasks not yet completed (maintained incrementally).
    active: usize,
    /// Ascending ids of tasks not yet completed — the iteration set of the
    /// live eligibility views, so a per-event pass scales with the tasks
    /// still running instead of every task ever submitted.
    active_ids: Vec<TaskId>,
    /// Monotone high-water mark of any single task's allocation size —
    /// a cheap *upper bound* on every active `σ(i)` (it never decreases,
    /// so shrinks and completions keep it valid), used by the incremental
    /// policies' redistribution-cost floor.
    sigma_hi: u32,
    /// End-event queue: expected finish times of *started* tasks, entered
    /// via [`PackState::set_t_u`] and lazily deleted on completion. Gives
    /// `O(log n)` [`PackState::earliest_active`] instead of a linear scan.
    ends: LazyMinHeap,
    /// Latest-finish queue: the max-direction mirror of `ends`, maintained
    /// by the same two entry points. Gives `O(log n)` "is the faulty task
    /// now the longest?" checks and seeds the incremental policies' head
    /// queries without a per-event rebuild.
    tails: LazyMaxHeap,
    /// Persistent greedy warm-start keys: for every started active task
    /// with `σ ≥ 4`, its shrink-floor `RC_FLOOR_SAFETY · m_i/σ_i` — the
    /// provable minimum redistribution cost of moving the task off its
    /// committed allocation. The queue minimum is the binding constraint of
    /// the warm-start certificate (`policies::greedy`): when it exceeds the
    /// pack's remaining horizon, Algorithm 5's two-processor reset provably
    /// walks every participant back to its committed allocation, so the
    /// rebuild may resume from it.
    ///
    /// Values derive from the task sizes the state cannot see, so the queue
    /// is *caller-maintained*: the policy layer initializes it lazily
    /// ([`PackState::greedy_floors_ready`]), every committed reallocation
    /// refreshes the moved task's entry ([`PackState::set_greedy_floor`]),
    /// and completions drop theirs ([`PackState::complete`]). Queries
    /// revalidate entries lazily (`LazyHeapCore::peek_valid`), so a stale
    /// *conservative* entry (completed task) costs one heap operation, and
    /// the debug certificate asserts exactness against a full scan.
    floors: LazyMinHeap,
    /// Whether `floors` has been initialized by the policy layer.
    floors_ready: bool,
}

/// Serializable view of a [`PackState`] — the stable snapshot encoding the
/// session snapshot/restore machinery round-trips through.
///
/// Only *logical* state is captured: the heap queues are represented by
/// their authoritative value arrays (`NaN` = absent) and rebuilt
/// canonically on restore. This is exact by construction: every queue pick
/// is a pure function of the authoritative array under a total-order
/// comparator, so the internal heap layout — the one thing a restore does
/// not reproduce — can never change a decision.
#[derive(Debug, Clone)]
pub struct PackStateSnapshot {
    /// Platform size `p`.
    pub p: u32,
    /// Per-task runtime records, verbatim.
    pub runtimes: Vec<TaskRuntime>,
    /// Ascending processor ids owned by each task.
    pub task_procs: Vec<Vec<u32>>,
    /// Monotone allocation-size high-water mark.
    pub sigma_hi: u32,
    /// End-event queue values (`NaN` = not started / completed).
    pub ends: Vec<f64>,
    /// Latest-finish queue values (same membership as `ends`).
    pub tails: Vec<f64>,
    /// Greedy warm-start floor queue values (`NaN` = absent).
    pub floors: Vec<f64>,
    /// Whether the floor queue has been initialized by the policy layer.
    pub floors_ready: bool,
}

impl PackState {
    /// Captures the logical state as a [`PackStateSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> PackStateSnapshot {
        let n = self.runtimes.len();
        PackStateSnapshot {
            p: self.num_procs(),
            runtimes: self.runtimes.clone(),
            task_procs: self.task_procs.clone(),
            sigma_hi: self.sigma_hi,
            ends: (0..n).map(|i| self.ends.value(i)).collect(),
            tails: (0..n).map(|i| self.tails.value(i)).collect(),
            floors: (0..n).map(|i| self.floors.value(i)).collect(),
            floors_ready: self.floors_ready,
        }
    }

    /// Rebuilds a state from a snapshot, validating internal consistency.
    ///
    /// # Errors
    /// [`ScheduleError::CorruptSnapshot`] on inconsistent lengths, processor
    /// ids out of range or owned twice, completed tasks owning processors,
    /// or queue membership contradicting the runtime records.
    pub fn from_snapshot(snap: &PackStateSnapshot) -> Result<Self, ScheduleError> {
        let n = snap.runtimes.len();
        let corrupt = |reason| Err(ScheduleError::CorruptSnapshot { reason });
        if snap.task_procs.len() != n
            || snap.ends.len() != n
            || snap.tails.len() != n
            || snap.floors.len() != n
        {
            return corrupt("per-task arrays disagree on the task count");
        }
        let p = snap.p as usize;
        let mut proc_owner: Vec<Option<TaskId>> = vec![None; p];
        for (i, procs) in snap.task_procs.iter().enumerate() {
            if snap.runtimes[i].done && !procs.is_empty() {
                return corrupt("a completed task still owns processors");
            }
            for &k in procs {
                if k as usize >= p {
                    return corrupt("processor id out of range");
                }
                if proc_owner[k as usize].replace(i).is_some() {
                    return corrupt("processor owned by two tasks");
                }
            }
        }
        let mut free = FreePool::new(snap.p);
        for k in 0..snap.p {
            if proc_owner[k as usize].is_none() {
                free.insert(k);
            }
        }
        let mut ends = LazyMinHeap::with_len(n);
        let mut tails = LazyMaxHeap::with_len(n);
        let mut floors = LazyMinHeap::with_len(n);
        for i in 0..n {
            if snap.ends[i].is_nan() != snap.tails[i].is_nan() {
                return corrupt("end/latest queues disagree on membership");
            }
            if !snap.ends[i].is_nan() {
                if snap.runtimes[i].done {
                    return corrupt("a completed task is still queued");
                }
                ends.update(i, snap.ends[i]);
                tails.update(i, snap.tails[i]);
            }
            if !snap.floors[i].is_nan() {
                if !snap.floors_ready {
                    return corrupt("floor entries present before initialization");
                }
                floors.update(i, snap.floors[i]);
            }
        }
        let active_ids: Vec<TaskId> = (0..n).filter(|&i| !snap.runtimes[i].done).collect();
        let state = Self {
            runtimes: snap.runtimes.clone(),
            proc_owner,
            task_procs: snap.task_procs.clone(),
            free,
            active: active_ids.len(),
            active_ids,
            sigma_hi: snap.sigma_hi,
            ends,
            tails,
            floors,
            floors_ready: snap.floors_ready,
        };
        if !state.check_invariants() {
            return corrupt("restored state fails the pack invariants");
        }
        Ok(state)
    }

    /// Appends `k` fresh, unstarted, unallocated tasks (ids continue from
    /// the current count) — the growth path behind mid-run job submission.
    /// New tasks own no processors and sit outside every queue until the
    /// admission layer starts them, exactly like the tail of
    /// [`PackState::unallocated`].
    pub fn add_tasks(&mut self, k: usize) {
        let old = self.runtimes.len();
        let n = old + k;
        self.runtimes.resize(n, TaskRuntime::initial());
        self.task_procs.resize_with(n, Vec::new);
        self.active += k;
        self.active_ids.extend(old..n);
        self.ends.grow_len(n);
        self.tails.grow_len(n);
        self.floors.grow_len(n);
    }

    /// Creates the state for `p` processors with the given initial
    /// allocation sizes (task `0` receives the lowest ids, and so on).
    ///
    /// # Panics
    /// Panics if the allocations exceed `p`.
    #[must_use]
    pub fn new(p: u32, sigmas: &[u32]) -> Self {
        let total: u32 = sigmas.iter().sum();
        assert!(total <= p, "allocations ({total}) exceed platform size ({p})");
        let mut proc_owner = vec![None; p as usize];
        let mut task_procs = Vec::with_capacity(sigmas.len());
        let mut next = 0u32;
        for (i, &s) in sigmas.iter().enumerate() {
            let procs: Vec<u32> = (next..next + s).collect();
            for &k in &procs {
                proc_owner[k as usize] = Some(i);
            }
            next += s;
            task_procs.push(procs);
        }
        let mut free = FreePool::new(p);
        for k in next..p {
            free.insert(k);
        }
        Self {
            runtimes: vec![TaskRuntime::initial(); sigmas.len()],
            proc_owner,
            task_procs,
            free,
            active: sigmas.len(),
            active_ids: (0..sigmas.len()).collect(),
            sigma_hi: sigmas.iter().copied().max().unwrap_or(0),
            ends: LazyMinHeap::with_len(sigmas.len()),
            tails: LazyMaxHeap::with_len(sigmas.len()),
            floors: LazyMinHeap::with_len(sigmas.len()),
            floors_ready: false,
        }
    }

    /// Creates the state for `p` processors and `n` tasks that own *no*
    /// processors yet.
    ///
    /// This is the entry state of the online co-scheduler: jobs exist in the
    /// bookkeeping from the start but are only granted processors when the
    /// admission layer starts them ([`PackState::grow`]). An unallocated
    /// task must be kept out of the policies' `eligible` sets until started.
    #[must_use]
    pub fn unallocated(p: u32, n: usize) -> Self {
        Self::new(p, &vec![0; n])
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.runtimes.len()
    }

    /// Platform size `p`.
    #[must_use]
    pub fn num_procs(&self) -> u32 {
        self.proc_owner.len() as u32
    }

    /// Immutable access to a task's runtime record.
    #[must_use]
    pub fn runtime(&self, i: TaskId) -> &TaskRuntime {
        &self.runtimes[i]
    }

    /// Mutable access to a task's runtime record.
    ///
    /// `t_u` must **not** be written through this accessor — use
    /// [`PackState::set_t_u`], which keeps the end-event queue in sync.
    pub fn runtime_mut(&mut self, i: TaskId) -> &mut TaskRuntime {
        &mut self.runtimes[i]
    }

    /// Sets task `i`'s expected finish time, entering it into the
    /// end-event queue (first call marks the task *started*).
    ///
    /// # Panics
    /// Panics if `t_u` is NaN.
    pub fn set_t_u(&mut self, i: TaskId, t_u: f64) {
        debug_assert_eq!(
            self.ends.len(),
            self.runtimes.len(),
            "set_t_u while an event queue is taken for a policy session"
        );
        self.runtimes[i].t_u = t_u;
        self.ends.update(i, t_u);
        self.tails.update(i, t_u);
    }

    /// Whether task `i` has been started (its first expected finish time
    /// set). Queued online jobs are unstarted; every task of the static
    /// engine is started at t = 0.
    #[must_use]
    pub fn is_started(&self, i: TaskId) -> bool {
        self.ends.contains(i)
    }

    /// Current allocation size `σ(i)`.
    #[must_use]
    pub fn sigma(&self, i: TaskId) -> u32 {
        self.task_procs[i].len() as u32
    }

    /// The task currently running on processor `k`, if any.
    #[must_use]
    pub fn owner(&self, proc: u32) -> Option<TaskId> {
        self.proc_owner[proc as usize]
    }

    /// Number of free processors.
    #[must_use]
    pub fn free_count(&self) -> u32 {
        self.free.len()
    }

    /// Number of processors currently owned by tasks (`p − free`).
    #[must_use]
    pub fn used_count(&self) -> u32 {
        self.num_procs() - self.free_count()
    }

    /// Grows task `i` by `by` processors, taking the lowest free ids.
    ///
    /// # Panics
    /// Panics if fewer than `by` processors are free or the task is done.
    pub fn grow(&mut self, i: TaskId, by: u32) {
        assert!(!self.runtimes[i].done, "cannot grow a completed task");
        assert!(
            self.free.len() >= by,
            "not enough free processors: need {by}, have {}",
            self.free.len()
        );
        let start = self.task_procs[i].len();
        self.free.take_lowest_n(by, &mut self.task_procs[i]);
        for x in start..self.task_procs[i].len() {
            self.proc_owner[self.task_procs[i][x] as usize] = Some(i);
        }
        self.task_procs[i].sort_unstable();
        self.sigma_hi = self.sigma_hi.max(self.task_procs[i].len() as u32);
    }

    /// Monotone upper bound on every task's current allocation size (the
    /// largest `σ` any single task has ever held).
    #[must_use]
    pub fn sigma_high_water(&self) -> u32 {
        debug_assert!(self.task_procs.iter().all(|p| p.len() as u32 <= self.sigma_hi));
        self.sigma_hi
    }

    /// Shrinks task `i` by `by` processors, releasing its highest ids.
    ///
    /// # Panics
    /// Panics if the task owns fewer than `by` processors.
    pub fn shrink(&mut self, i: TaskId, by: u32) {
        assert!(
            self.task_procs[i].len() >= by as usize,
            "cannot shrink task {i} by {by}: owns {}",
            self.task_procs[i].len()
        );
        for _ in 0..by {
            let k = self.task_procs[i].pop().expect("non-empty");
            self.proc_owner[k as usize] = None;
            self.free.insert(k);
        }
    }

    /// Sets task `i`'s allocation to exactly `new_sigma` processors.
    pub fn set_sigma(&mut self, i: TaskId, new_sigma: u32) {
        let cur = self.sigma(i);
        match new_sigma.cmp(&cur) {
            std::cmp::Ordering::Greater => self.grow(i, new_sigma - cur),
            std::cmp::Ordering::Less => self.shrink(i, cur - new_sigma),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Marks task `i` completed at `time` and releases all its processors.
    pub fn complete(&mut self, i: TaskId, time: f64) {
        debug_assert!(!self.runtimes[i].done, "task {i} completed twice");
        let cur = self.sigma(i);
        self.shrink(i, cur);
        let rt = &mut self.runtimes[i];
        rt.done = true;
        rt.alpha = 0.0;
        rt.completion_time = time;
        self.active -= 1;
        let pos = self.active_ids.binary_search(&i).expect("completed task was active");
        self.active_ids.remove(pos);
        self.ends.remove(i);
        self.tails.remove(i);
        self.floors.remove(i);
    }

    /// Whether the greedy warm-start floor queue has been initialized (the
    /// policy layer does so lazily on its first warm-start certificate).
    #[must_use]
    pub fn greedy_floors_ready(&self) -> bool {
        self.floors_ready
    }

    /// Sets (or clears, with `None`) task `i`'s greedy warm-start floor.
    /// Must be called by whoever changes a started task's allocation while
    /// the queue is ready: `Some(RC_FLOOR_SAFETY · m_i/σ_i)` for `σ ≥ 4`,
    /// `None` below (a two-processor task has no shrink walk to certify).
    ///
    /// # Panics
    /// Panics (debug) if a floor is set while the queue is not ready.
    pub fn set_greedy_floor(&mut self, i: TaskId, floor: Option<f64>) {
        debug_assert!(self.floors_ready, "greedy floor set before initialization");
        match floor {
            Some(v) => self.floors.update(i, v),
            None => self.floors.remove(i),
        }
    }

    /// Takes the greedy floor queue for a certificate query (the lazy
    /// revalidation closure borrows the pack state read-only); hand it back
    /// via [`PackState::put_greedy_floors`]. The first take marks the queue
    /// ready — the caller must fully populate it before returning it.
    #[must_use]
    pub fn take_greedy_floors(&mut self) -> LazyMinHeap {
        debug_assert_eq!(self.floors.len(), self.runtimes.len(), "floor queue already taken");
        self.floors_ready = true;
        std::mem::take(&mut self.floors)
    }

    /// Returns the floor queue taken by [`PackState::take_greedy_floors`].
    pub fn put_greedy_floors(&mut self, q: LazyMinHeap) {
        debug_assert_eq!(q.len(), self.runtimes.len(), "returning a foreign floor queue");
        self.floors = q;
    }

    /// Iterates over the ids of tasks still running.
    pub fn active_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.active_ids.iter().copied()
    }

    /// Ascending ids of tasks not yet completed (O(1) access; maintained
    /// incrementally by [`PackState::complete`]).
    #[must_use]
    pub fn active_ids(&self) -> &[TaskId] {
        debug_assert_eq!(self.active_ids.len(), self.active);
        &self.active_ids
    }

    /// Number of tasks still running (O(1), maintained incrementally).
    #[must_use]
    pub fn active_count(&self) -> usize {
        debug_assert_eq!(self.active, self.runtimes.iter().filter(|r| !r.done).count());
        self.active
    }

    /// The *started* active task with the latest expected finish time, if
    /// any (ties broken toward the lowest id). `O(log n)` via the
    /// latest-finish queue; in debug builds the pick is cross-checked
    /// against [`PackState::longest_active_scan`].
    pub fn longest_active(&mut self) -> Option<(TaskId, f64)> {
        let picked = self.tails.peek_max();
        debug_assert_eq!(picked, self.longest_active_scan(), "latest-queue/scan divergence");
        picked
    }

    /// Reference implementation of [`PackState::longest_active`]: a linear
    /// scan over started active tasks. Kept for equivalence tests and
    /// debug cross-checking.
    #[must_use]
    pub fn longest_active_scan(&self) -> Option<(TaskId, f64)> {
        let mut best: Option<(TaskId, f64)> = None;
        for i in self.active_tasks() {
            if !self.ends.contains(i) {
                continue;
            }
            let tu = self.runtimes[i].t_u;
            if best.is_none_or(|(_, b)| tu > b) {
                best = Some((i, tu));
            }
        }
        best
    }

    /// Whether every started active task's expected finish time is `≤
    /// bound` — the engines' "did the faulty task become the longest?"
    /// test, `O(1)` amortized via the latest-finish queue instead of a
    /// linear scan (the faulty task itself sits in the queue at its
    /// post-rollback time, which never exceeds its own bound).
    pub fn none_later_than(&mut self, bound: f64) -> bool {
        self.longest_active().is_none_or(|(_, tu)| tu <= bound)
    }

    /// Collects (ascending id) and unqueues the started active tasks with
    /// an expected finish time strictly before `t` — the fault handler's
    /// "tasks finishing inside the recovery window" set, found in
    /// `O(found · log n)` instead of an `O(n)` scan.
    ///
    /// The caller must [`PackState::complete`] every returned task before
    /// the next queue query: the tasks are already removed from the event
    /// queues, so leaving one active would desynchronize the queue views.
    pub fn drain_ending_before(&mut self, t: f64, out: &mut Vec<TaskId>) {
        out.clear();
        #[cfg(debug_assertions)]
        let expect: Vec<TaskId> = {
            let mut v: Vec<TaskId> = self
                .active_tasks()
                .filter(|&i| self.ends.contains(i) && self.runtimes[i].t_u < t)
                .collect();
            v.sort_unstable();
            v
        };
        while let Some((i, tu)) = self.ends.peek_min() {
            if tu >= t {
                break;
            }
            self.ends.remove(i);
            self.tails.remove(i);
            out.push(i);
        }
        // The queue yields (t_u, id) order; the engines complete the
        // finishing tasks in ascending id order (the historical event-log
        // order), so normalize here.
        out.sort_unstable();
        #[cfg(debug_assertions)]
        debug_assert_eq!(*out, expect, "drain/scan divergence");
    }

    /// Takes the end-event (min) queue out of the state for a policy
    /// decision session (filtered donor queries borrow the pack state
    /// read-only while mutating the queue). The caller must hand it back
    /// via [`PackState::put_end_queue`] before committing any plan.
    #[must_use]
    pub fn take_end_queue(&mut self) -> LazyMinHeap {
        debug_assert_eq!(self.ends.len(), self.runtimes.len(), "end queue already taken");
        std::mem::take(&mut self.ends)
    }

    /// Returns the end-event queue taken by [`PackState::take_end_queue`].
    pub fn put_end_queue(&mut self, q: LazyMinHeap) {
        debug_assert_eq!(q.len(), self.runtimes.len(), "returning a foreign end queue");
        self.ends = q;
    }

    /// Takes the latest-finish (max) queue for a policy decision session;
    /// hand it back via [`PackState::put_latest_queue`] before committing.
    #[must_use]
    pub fn take_latest_queue(&mut self) -> LazyMaxHeap {
        debug_assert_eq!(self.tails.len(), self.runtimes.len(), "latest queue already taken");
        std::mem::take(&mut self.tails)
    }

    /// Returns the latest-finish queue taken by
    /// [`PackState::take_latest_queue`].
    pub fn put_latest_queue(&mut self, q: LazyMaxHeap) {
        debug_assert_eq!(q.len(), self.runtimes.len(), "returning a foreign latest queue");
        self.tails = q;
    }

    /// The *started* active task with the earliest expected finish time, if
    /// any (ties toward the lowest id). `O(log n)` via the lazy-deletion
    /// end-event queue; in debug builds the pick is cross-checked against
    /// [`PackState::earliest_active_scan`].
    ///
    /// Tasks enter consideration at their first [`PackState::set_t_u`]
    /// (the online engine keeps queued jobs out this way) and leave on
    /// [`PackState::complete`].
    pub fn earliest_active(&mut self) -> Option<(TaskId, f64)> {
        let picked = self.ends.peek_min();
        debug_assert_eq!(picked, self.earliest_active_scan(), "heap/scan divergence");
        picked
    }

    /// Reference implementation of [`PackState::earliest_active`]: a linear
    /// scan over started active tasks. Kept for equivalence tests and
    /// debug cross-checking.
    #[must_use]
    pub fn earliest_active_scan(&self) -> Option<(TaskId, f64)> {
        let mut best: Option<(TaskId, f64)> = None;
        for i in self.active_tasks() {
            if !self.ends.contains(i) {
                continue;
            }
            let tu = self.runtimes[i].t_u;
            if best.is_none_or(|(_, b)| tu < b) {
                best = Some((i, tu));
            }
        }
        best
    }

    /// Current makespan estimate: the maximum of completed tasks'
    /// completion times and active tasks' expected finish times (Fig. 9a).
    #[must_use]
    pub fn makespan_estimate(&self) -> f64 {
        self.runtimes
            .iter()
            .map(|r| if r.done { r.completion_time } else { r.t_u })
            .fold(0.0, f64::max)
    }

    /// Population standard deviation of active tasks' allocation sizes
    /// (Fig. 9b).
    #[must_use]
    pub fn alloc_stddev(&self) -> f64 {
        let sizes: Vec<f64> = self.active_tasks().map(|i| f64::from(self.sigma(i))).collect();
        stddev_population(&sizes)
    }

    /// Whether two states agree down to the physical processor assignment
    /// and the *bit patterns* of every runtime field — the equivalence the
    /// incremental policies' debug cross-checks and the property tests
    /// assert against the from-scratch reference path.
    #[must_use]
    pub fn assignment_eq(&self, other: &Self) -> bool {
        self.proc_owner == other.proc_owner
            && self.task_procs == other.task_procs
            && self.free.count == other.free.count
            && self.free.words == other.free.words
            && self.active == other.active
            && self.runtimes.len() == other.runtimes.len()
            && self.runtimes.iter().zip(&other.runtimes).all(|(a, b)| {
                a.done == b.done
                    && a.alpha.to_bits() == b.alpha.to_bits()
                    && a.t_last_r.to_bits() == b.t_last_r.to_bits()
                    && a.t_u.to_bits() == b.t_u.to_bits()
                    && a.completion_time.to_bits() == b.completion_time.to_bits()
            })
    }

    /// Debug invariant: ownership tables are mutually consistent and
    /// every allocation is even.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut counted = 0usize;
        for (i, procs) in self.task_procs.iter().enumerate() {
            if self.runtimes[i].done && !procs.is_empty() {
                return false;
            }
            if !procs.is_empty() && procs.len() % 2 != 0 {
                return false;
            }
            counted += procs.len();
            let mut last = None;
            for &k in procs {
                if self.proc_owner[k as usize] != Some(i) {
                    return false;
                }
                if let Some(prev) = last {
                    if k <= prev {
                        return false;
                    }
                }
                last = Some(k);
            }
        }
        for k in self.free.iter() {
            if self.proc_owner[k as usize].is_some() {
                return false;
            }
        }
        counted + self.free.len() as usize == self.proc_owner.len()
            && self.proc_owner.iter().filter(|o| o.is_some()).count() == counted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> PackState {
        PackState::new(10, &[2, 4, 2])
    }

    #[test]
    fn initial_assignment_is_contiguous() {
        let s = state();
        assert_eq!(s.sigma(0), 2);
        assert_eq!(s.sigma(1), 4);
        assert_eq!(s.sigma(2), 2);
        assert_eq!(s.free_count(), 2);
        assert_eq!(s.owner(0), Some(0));
        assert_eq!(s.owner(2), Some(1));
        assert_eq!(s.owner(6), Some(2));
        assert_eq!(s.owner(8), None);
        assert!(s.check_invariants());
    }

    #[test]
    fn grow_takes_lowest_free_ids() {
        let mut s = state();
        s.grow(0, 2);
        assert_eq!(s.sigma(0), 4);
        assert_eq!(s.owner(8), Some(0));
        assert_eq!(s.owner(9), Some(0));
        assert_eq!(s.free_count(), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn shrink_releases_highest_ids() {
        let mut s = state();
        s.shrink(1, 2);
        assert_eq!(s.sigma(1), 2);
        assert_eq!(s.owner(4), None);
        assert_eq!(s.owner(5), None);
        assert_eq!(s.free_count(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    fn moves_are_deterministic() {
        let mut a = state();
        let mut b = state();
        for s in [&mut a, &mut b] {
            s.shrink(1, 2);
            s.grow(2, 2);
            s.set_sigma(0, 4);
        }
        for k in 0..10 {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    #[test]
    fn set_sigma_both_directions() {
        let mut s = state();
        s.set_sigma(1, 2);
        assert_eq!(s.sigma(1), 2);
        s.set_sigma(1, 6);
        assert_eq!(s.sigma(1), 6);
        s.set_sigma(1, 6);
        assert_eq!(s.sigma(1), 6);
        assert!(s.check_invariants());
    }

    #[test]
    fn complete_releases_everything() {
        let mut s = state();
        s.set_t_u(1, 5.0);
        s.complete(1, 5.0);
        assert!(s.runtime(1).done);
        assert_eq!(s.runtime(1).completion_time, 5.0);
        assert_eq!(s.runtime(1).alpha, 0.0);
        assert_eq!(s.sigma(1), 0);
        assert_eq!(s.free_count(), 6);
        assert_eq!(s.active_count(), 2);
        assert!(s.check_invariants());
    }

    #[test]
    fn longest_and_earliest() {
        let mut s = state();
        s.set_t_u(0, 10.0);
        s.set_t_u(1, 30.0);
        s.set_t_u(2, 20.0);
        assert_eq!(s.longest_active(), Some((1, 30.0)));
        assert_eq!(s.earliest_active(), Some((0, 10.0)));
        s.complete(1, 30.0);
        assert_eq!(s.longest_active(), Some((2, 20.0)));
    }

    #[test]
    fn longest_tie_breaks_to_lowest_id() {
        let mut s = state();
        for i in 0..3 {
            s.set_t_u(i, 7.0);
        }
        assert_eq!(s.longest_active(), Some((0, 7.0)));
    }

    #[test]
    fn makespan_estimate_mixes_done_and_active() {
        let mut s = state();
        s.set_t_u(0, 10.0);
        s.set_t_u(1, 30.0);
        s.set_t_u(2, 20.0);
        s.complete(1, 31.5);
        assert_eq!(s.makespan_estimate(), 31.5);
        s.set_t_u(0, 40.0);
        assert_eq!(s.makespan_estimate(), 40.0);
    }

    #[test]
    fn alloc_stddev_over_active_only() {
        let mut s = state();
        // σ = [2, 4, 2]: mean 8/3, population stddev = sqrt(8/9).
        let expected = (8.0f64 / 9.0).sqrt();
        assert!((s.alloc_stddev() - expected).abs() < 1e-12);
        s.complete(1, 1.0);
        assert_eq!(s.alloc_stddev(), 0.0);
    }

    #[test]
    fn unallocated_state_starts_empty() {
        let mut s = PackState::unallocated(8, 3);
        assert_eq!(s.num_tasks(), 3);
        assert_eq!(s.free_count(), 8);
        assert_eq!(s.used_count(), 0);
        for i in 0..3 {
            assert_eq!(s.sigma(i), 0);
            assert!(!s.runtime(i).done);
        }
        assert!(s.check_invariants());
        // Tasks can be started later by growing from zero.
        s.grow(1, 4);
        assert_eq!(s.sigma(1), 4);
        assert_eq!(s.used_count(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    #[should_panic(expected = "exceed platform size")]
    fn rejects_over_allocation() {
        let _ = PackState::new(4, &[2, 4]);
    }

    #[test]
    #[should_panic(expected = "not enough free processors")]
    fn grow_rejects_when_pool_empty() {
        let mut s = state();
        s.grow(0, 4);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrink_rejects_underflow() {
        let mut s = state();
        s.shrink(0, 4);
    }
}
