//! Runtime state of a pack under execution: per-task bookkeeping and the
//! explicit processor-to-task assignment.
//!
//! The paper reasons about allocation *sizes* `σ(i)`; the simulator also
//! tracks *which* physical processors belong to each task, because faults
//! strike processor ids (§3.1: the MTBF of a task on `j` processors is
//! `µ/j`, which emerges mechanically from per-processor fault streams).
//! Processor moves are deterministic — lowest free ids are assigned first,
//! highest owned ids are released first — so runs are exactly reproducible.

use std::collections::BTreeSet;

use redistrib_model::TaskId;
use redistrib_sim::stddev_population;

use crate::heap::LazyMinHeap;

/// Per-task runtime bookkeeping (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRuntime {
    /// Remaining fraction of work `α_i ∈ [0, 1]`.
    pub alpha: f64,
    /// Anchor `tlastR_i`: time of the last redistribution or failure (plus
    /// its overheads); work accounting restarts from a period boundary here.
    pub t_last_r: f64,
    /// Current expected finish time `t^U_i` (absolute).
    pub t_u: f64,
    /// Whether the task has completed.
    pub done: bool,
    /// Completion time (meaningful once `done`).
    pub completion_time: f64,
}

impl TaskRuntime {
    fn initial() -> Self {
        Self { alpha: 1.0, t_last_r: 0.0, t_u: 0.0, done: false, completion_time: 0.0 }
    }
}

/// Mutable state of a pack: task runtimes plus the processor assignment.
#[derive(Debug, Clone)]
pub struct PackState {
    runtimes: Vec<TaskRuntime>,
    /// `proc_owner[k]` is the task currently running on processor `k`.
    proc_owner: Vec<Option<TaskId>>,
    /// Ascending processor ids owned by each task.
    task_procs: Vec<Vec<u32>>,
    /// Free processors.
    free: BTreeSet<u32>,
    /// Number of tasks not yet completed (maintained incrementally).
    active: usize,
    /// End-event queue: expected finish times of *started* tasks, entered
    /// via [`PackState::set_t_u`] and lazily deleted on completion. Gives
    /// `O(log n)` [`PackState::earliest_active`] instead of a linear scan.
    ends: LazyMinHeap,
}

impl PackState {
    /// Creates the state for `p` processors with the given initial
    /// allocation sizes (task `0` receives the lowest ids, and so on).
    ///
    /// # Panics
    /// Panics if the allocations exceed `p`.
    #[must_use]
    pub fn new(p: u32, sigmas: &[u32]) -> Self {
        let total: u32 = sigmas.iter().sum();
        assert!(total <= p, "allocations ({total}) exceed platform size ({p})");
        let mut proc_owner = vec![None; p as usize];
        let mut task_procs = Vec::with_capacity(sigmas.len());
        let mut next = 0u32;
        for (i, &s) in sigmas.iter().enumerate() {
            let procs: Vec<u32> = (next..next + s).collect();
            for &k in &procs {
                proc_owner[k as usize] = Some(i);
            }
            next += s;
            task_procs.push(procs);
        }
        let free: BTreeSet<u32> = (next..p).collect();
        Self {
            runtimes: vec![TaskRuntime::initial(); sigmas.len()],
            proc_owner,
            task_procs,
            free,
            active: sigmas.len(),
            ends: LazyMinHeap::with_len(sigmas.len()),
        }
    }

    /// Creates the state for `p` processors and `n` tasks that own *no*
    /// processors yet.
    ///
    /// This is the entry state of the online co-scheduler: jobs exist in the
    /// bookkeeping from the start but are only granted processors when the
    /// admission layer starts them ([`PackState::grow`]). An unallocated
    /// task must be kept out of the policies' `eligible` sets until started.
    #[must_use]
    pub fn unallocated(p: u32, n: usize) -> Self {
        Self::new(p, &vec![0; n])
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.runtimes.len()
    }

    /// Platform size `p`.
    #[must_use]
    pub fn num_procs(&self) -> u32 {
        self.proc_owner.len() as u32
    }

    /// Immutable access to a task's runtime record.
    #[must_use]
    pub fn runtime(&self, i: TaskId) -> &TaskRuntime {
        &self.runtimes[i]
    }

    /// Mutable access to a task's runtime record.
    ///
    /// `t_u` must **not** be written through this accessor — use
    /// [`PackState::set_t_u`], which keeps the end-event queue in sync.
    pub fn runtime_mut(&mut self, i: TaskId) -> &mut TaskRuntime {
        &mut self.runtimes[i]
    }

    /// Sets task `i`'s expected finish time, entering it into the
    /// end-event queue (first call marks the task *started*).
    ///
    /// # Panics
    /// Panics if `t_u` is NaN.
    pub fn set_t_u(&mut self, i: TaskId, t_u: f64) {
        self.runtimes[i].t_u = t_u;
        self.ends.update(i, t_u);
    }

    /// Current allocation size `σ(i)`.
    #[must_use]
    pub fn sigma(&self, i: TaskId) -> u32 {
        self.task_procs[i].len() as u32
    }

    /// The task currently running on processor `k`, if any.
    #[must_use]
    pub fn owner(&self, proc: u32) -> Option<TaskId> {
        self.proc_owner[proc as usize]
    }

    /// Number of free processors.
    #[must_use]
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    /// Number of processors currently owned by tasks (`p − free`).
    #[must_use]
    pub fn used_count(&self) -> u32 {
        self.num_procs() - self.free_count()
    }

    /// Grows task `i` by `by` processors, taking the lowest free ids.
    ///
    /// # Panics
    /// Panics if fewer than `by` processors are free or the task is done.
    pub fn grow(&mut self, i: TaskId, by: u32) {
        assert!(!self.runtimes[i].done, "cannot grow a completed task");
        assert!(
            self.free.len() >= by as usize,
            "not enough free processors: need {by}, have {}",
            self.free.len()
        );
        for _ in 0..by {
            let k = *self.free.iter().next().expect("free set non-empty");
            self.free.remove(&k);
            self.proc_owner[k as usize] = Some(i);
            self.task_procs[i].push(k);
        }
        self.task_procs[i].sort_unstable();
    }

    /// Shrinks task `i` by `by` processors, releasing its highest ids.
    ///
    /// # Panics
    /// Panics if the task owns fewer than `by` processors.
    pub fn shrink(&mut self, i: TaskId, by: u32) {
        assert!(
            self.task_procs[i].len() >= by as usize,
            "cannot shrink task {i} by {by}: owns {}",
            self.task_procs[i].len()
        );
        for _ in 0..by {
            let k = self.task_procs[i].pop().expect("non-empty");
            self.proc_owner[k as usize] = None;
            self.free.insert(k);
        }
    }

    /// Sets task `i`'s allocation to exactly `new_sigma` processors.
    pub fn set_sigma(&mut self, i: TaskId, new_sigma: u32) {
        let cur = self.sigma(i);
        match new_sigma.cmp(&cur) {
            std::cmp::Ordering::Greater => self.grow(i, new_sigma - cur),
            std::cmp::Ordering::Less => self.shrink(i, cur - new_sigma),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Marks task `i` completed at `time` and releases all its processors.
    pub fn complete(&mut self, i: TaskId, time: f64) {
        debug_assert!(!self.runtimes[i].done, "task {i} completed twice");
        let cur = self.sigma(i);
        self.shrink(i, cur);
        let rt = &mut self.runtimes[i];
        rt.done = true;
        rt.alpha = 0.0;
        rt.completion_time = time;
        self.active -= 1;
        self.ends.remove(i);
    }

    /// Iterates over the ids of tasks still running.
    pub fn active_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.runtimes.iter().enumerate().filter(|(_, r)| !r.done).map(|(i, _)| i)
    }

    /// Number of tasks still running (O(1), maintained incrementally).
    #[must_use]
    pub fn active_count(&self) -> usize {
        debug_assert_eq!(self.active, self.runtimes.iter().filter(|r| !r.done).count());
        self.active
    }

    /// The active task with the latest expected finish time, if any
    /// (ties broken toward the lowest id).
    #[must_use]
    pub fn longest_active(&self) -> Option<(TaskId, f64)> {
        let mut best: Option<(TaskId, f64)> = None;
        for i in self.active_tasks() {
            let tu = self.runtimes[i].t_u;
            if best.is_none_or(|(_, b)| tu > b) {
                best = Some((i, tu));
            }
        }
        best
    }

    /// The *started* active task with the earliest expected finish time, if
    /// any (ties toward the lowest id). `O(log n)` via the lazy-deletion
    /// end-event queue; in debug builds the pick is cross-checked against
    /// [`PackState::earliest_active_scan`].
    ///
    /// Tasks enter consideration at their first [`PackState::set_t_u`]
    /// (the online engine keeps queued jobs out this way) and leave on
    /// [`PackState::complete`].
    pub fn earliest_active(&mut self) -> Option<(TaskId, f64)> {
        let picked = self.ends.peek_min();
        debug_assert_eq!(picked, self.earliest_active_scan(), "heap/scan divergence");
        picked
    }

    /// Reference implementation of [`PackState::earliest_active`]: a linear
    /// scan over started active tasks. Kept for equivalence tests and
    /// debug cross-checking.
    #[must_use]
    pub fn earliest_active_scan(&self) -> Option<(TaskId, f64)> {
        let mut best: Option<(TaskId, f64)> = None;
        for i in self.active_tasks() {
            if !self.ends.contains(i) {
                continue;
            }
            let tu = self.runtimes[i].t_u;
            if best.is_none_or(|(_, b)| tu < b) {
                best = Some((i, tu));
            }
        }
        best
    }

    /// Current makespan estimate: the maximum of completed tasks'
    /// completion times and active tasks' expected finish times (Fig. 9a).
    #[must_use]
    pub fn makespan_estimate(&self) -> f64 {
        self.runtimes
            .iter()
            .map(|r| if r.done { r.completion_time } else { r.t_u })
            .fold(0.0, f64::max)
    }

    /// Population standard deviation of active tasks' allocation sizes
    /// (Fig. 9b).
    #[must_use]
    pub fn alloc_stddev(&self) -> f64 {
        let sizes: Vec<f64> = self.active_tasks().map(|i| f64::from(self.sigma(i))).collect();
        stddev_population(&sizes)
    }

    /// Debug invariant: ownership tables are mutually consistent and
    /// every allocation is even.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut counted = 0usize;
        for (i, procs) in self.task_procs.iter().enumerate() {
            if self.runtimes[i].done && !procs.is_empty() {
                return false;
            }
            if !procs.is_empty() && procs.len() % 2 != 0 {
                return false;
            }
            counted += procs.len();
            let mut last = None;
            for &k in procs {
                if self.proc_owner[k as usize] != Some(i) {
                    return false;
                }
                if let Some(prev) = last {
                    if k <= prev {
                        return false;
                    }
                }
                last = Some(k);
            }
        }
        for &k in &self.free {
            if self.proc_owner[k as usize].is_some() {
                return false;
            }
        }
        counted + self.free.len() == self.proc_owner.len()
            && self.proc_owner.iter().filter(|o| o.is_some()).count() == counted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> PackState {
        PackState::new(10, &[2, 4, 2])
    }

    #[test]
    fn initial_assignment_is_contiguous() {
        let s = state();
        assert_eq!(s.sigma(0), 2);
        assert_eq!(s.sigma(1), 4);
        assert_eq!(s.sigma(2), 2);
        assert_eq!(s.free_count(), 2);
        assert_eq!(s.owner(0), Some(0));
        assert_eq!(s.owner(2), Some(1));
        assert_eq!(s.owner(6), Some(2));
        assert_eq!(s.owner(8), None);
        assert!(s.check_invariants());
    }

    #[test]
    fn grow_takes_lowest_free_ids() {
        let mut s = state();
        s.grow(0, 2);
        assert_eq!(s.sigma(0), 4);
        assert_eq!(s.owner(8), Some(0));
        assert_eq!(s.owner(9), Some(0));
        assert_eq!(s.free_count(), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn shrink_releases_highest_ids() {
        let mut s = state();
        s.shrink(1, 2);
        assert_eq!(s.sigma(1), 2);
        assert_eq!(s.owner(4), None);
        assert_eq!(s.owner(5), None);
        assert_eq!(s.free_count(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    fn moves_are_deterministic() {
        let mut a = state();
        let mut b = state();
        for s in [&mut a, &mut b] {
            s.shrink(1, 2);
            s.grow(2, 2);
            s.set_sigma(0, 4);
        }
        for k in 0..10 {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    #[test]
    fn set_sigma_both_directions() {
        let mut s = state();
        s.set_sigma(1, 2);
        assert_eq!(s.sigma(1), 2);
        s.set_sigma(1, 6);
        assert_eq!(s.sigma(1), 6);
        s.set_sigma(1, 6);
        assert_eq!(s.sigma(1), 6);
        assert!(s.check_invariants());
    }

    #[test]
    fn complete_releases_everything() {
        let mut s = state();
        s.set_t_u(1, 5.0);
        s.complete(1, 5.0);
        assert!(s.runtime(1).done);
        assert_eq!(s.runtime(1).completion_time, 5.0);
        assert_eq!(s.runtime(1).alpha, 0.0);
        assert_eq!(s.sigma(1), 0);
        assert_eq!(s.free_count(), 6);
        assert_eq!(s.active_count(), 2);
        assert!(s.check_invariants());
    }

    #[test]
    fn longest_and_earliest() {
        let mut s = state();
        s.set_t_u(0, 10.0);
        s.set_t_u(1, 30.0);
        s.set_t_u(2, 20.0);
        assert_eq!(s.longest_active(), Some((1, 30.0)));
        assert_eq!(s.earliest_active(), Some((0, 10.0)));
        s.complete(1, 30.0);
        assert_eq!(s.longest_active(), Some((2, 20.0)));
    }

    #[test]
    fn longest_tie_breaks_to_lowest_id() {
        let mut s = state();
        for i in 0..3 {
            s.set_t_u(i, 7.0);
        }
        assert_eq!(s.longest_active(), Some((0, 7.0)));
    }

    #[test]
    fn makespan_estimate_mixes_done_and_active() {
        let mut s = state();
        s.set_t_u(0, 10.0);
        s.set_t_u(1, 30.0);
        s.set_t_u(2, 20.0);
        s.complete(1, 31.5);
        assert_eq!(s.makespan_estimate(), 31.5);
        s.set_t_u(0, 40.0);
        assert_eq!(s.makespan_estimate(), 40.0);
    }

    #[test]
    fn alloc_stddev_over_active_only() {
        let mut s = state();
        // σ = [2, 4, 2]: mean 8/3, population stddev = sqrt(8/9).
        let expected = (8.0f64 / 9.0).sqrt();
        assert!((s.alloc_stddev() - expected).abs() < 1e-12);
        s.complete(1, 1.0);
        assert_eq!(s.alloc_stddev(), 0.0);
    }

    #[test]
    fn unallocated_state_starts_empty() {
        let mut s = PackState::unallocated(8, 3);
        assert_eq!(s.num_tasks(), 3);
        assert_eq!(s.free_count(), 8);
        assert_eq!(s.used_count(), 0);
        for i in 0..3 {
            assert_eq!(s.sigma(i), 0);
            assert!(!s.runtime(i).done);
        }
        assert!(s.check_invariants());
        // Tasks can be started later by growing from zero.
        s.grow(1, 4);
        assert_eq!(s.sigma(1), 4);
        assert_eq!(s.used_count(), 4);
        assert!(s.check_invariants());
    }

    #[test]
    #[should_panic(expected = "exceed platform size")]
    fn rejects_over_allocation() {
        let _ = PackState::new(4, &[2, 4]);
    }

    #[test]
    #[should_panic(expected = "not enough free processors")]
    fn grow_rejects_when_pool_empty() {
        let mut s = state();
        s.grow(0, 4);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn shrink_rejects_underflow() {
        let mut s = state();
        s.shrink(0, 4);
    }
}
