//! The Theorem 2 reduction, as an executable gadget.
//!
//! §4.2 proves that minimizing the makespan *with* redistributions is
//! NP-complete in the strong sense (even fault-free, with zero
//! redistribution cost) by reduction from 3-partition. This module builds
//! the reduction's scheduling instance from a 3-partition instance,
//! simulates the intended schedule, and brute-forces small instances — so
//! the construction's yes/no equivalence can be *executed*, not just read:
//!
//! * a 3-partition solution yields a schedule of makespan exactly
//!   `D = max_i a_i + 1`;
//! * any unbalanced partition yields `D + (S_k − B)/4 > D` for its heaviest
//!   triple `k`.

/// A 3-partition instance: `3m` positive integers with `B/4 < a_i < B/2`
/// and `Σ a_i = m·B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreePartition {
    /// The target triple sum `B`.
    pub b: u64,
    /// The `3m` items.
    pub items: Vec<u64>,
}

impl ThreePartition {
    /// Validates and builds an instance.
    ///
    /// # Panics
    /// Panics if the item count is not a positive multiple of 3, if any item
    /// violates `B/4 < a_i < B/2` (strict, so every group of sum `B` has
    /// exactly three items), or if the total is not `m·B`.
    #[must_use]
    pub fn new(b: u64, items: Vec<u64>) -> Self {
        assert!(!items.is_empty() && items.len().is_multiple_of(3), "need 3m items");
        let m = (items.len() / 3) as u64;
        for &a in &items {
            assert!(4 * a > b && 4 * a < 2 * b, "item {a} outside (B/4, B/2) for B={b}");
        }
        assert_eq!(items.iter().sum::<u64>(), m * b, "items must sum to m·B");
        Self { b, items }
    }

    /// Number of triples `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.items.len() / 3
    }

    /// The deadline `D = max_i a_i + 1` of the reduction.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        (*self.items.iter().max().expect("non-empty") + 1) as f64
    }
}

/// One task of the reduction's scheduling instance, with its malleable
/// fault-free profile `t(j)`.
#[derive(Debug, Clone, PartialEq)]
pub enum GadgetTask {
    /// Small task `i ≤ 3m`: `t(1) = a_i`, `t(j) = 3a_i/4` for `j > 1`
    /// (strictly more work on several processors).
    Small {
        /// The 3-partition item `a_i`.
        a: u64,
    },
    /// Large task: `t(j) = (4D−B)/j` for `j ≤ 4` (conserved work `4D−B`),
    /// `t(j) = 2(4D−B)/9` for `j > 4` (strictly more work).
    Large {
        /// The conserved work `4D − B`.
        work: f64,
    },
}

impl GadgetTask {
    /// Fault-free execution time on `j ≥ 1` processors.
    ///
    /// # Panics
    /// Panics if `j == 0`.
    #[must_use]
    pub fn time(&self, j: u32) -> f64 {
        assert!(j >= 1, "at least one processor");
        match *self {
            GadgetTask::Small { a } => {
                if j == 1 {
                    a as f64
                } else {
                    0.75 * a as f64
                }
            }
            GadgetTask::Large { work } => {
                if j <= 4 {
                    work / f64::from(j)
                } else {
                    2.0 * work / 9.0
                }
            }
        }
    }

    /// The work `j·t(j)`.
    #[must_use]
    pub fn work(&self, j: u32) -> f64 {
        f64::from(j) * self.time(j)
    }
}

/// Builds the `4m` tasks of instance `I₂` from a 3-partition instance
/// (small tasks first, then the `m` identical large tasks).
#[must_use]
pub fn build_tasks(inst: &ThreePartition) -> Vec<GadgetTask> {
    let d = inst.deadline();
    let work = 4.0 * d - inst.b as f64;
    inst.items
        .iter()
        .map(|&a| GadgetTask::Small { a })
        .chain(std::iter::repeat_with(move || GadgetTask::Large { work }).take(inst.m()))
        .collect()
}

/// Finish time of a malleable task whose processor count changes over time:
/// `profile` is the task, `phases` the `(start_time, procs)` steps in
/// increasing time starting at 0. The task completes when the accumulated
/// fraction `Σ Δt/t(j)` reaches 1.
///
/// # Panics
/// Panics if `phases` is empty, does not start at 0, or the task never
/// finishes with the final processor count.
#[must_use]
pub fn malleable_finish(profile: &GadgetTask, phases: &[(f64, u32)]) -> f64 {
    assert!(!phases.is_empty() && phases[0].0 == 0.0, "phases must start at t = 0");
    let mut fraction = 0.0;
    for (idx, &(start, procs)) in phases.iter().enumerate() {
        let rate = 1.0 / profile.time(procs);
        match phases.get(idx + 1) {
            Some(&(next_start, _)) => {
                debug_assert!(next_start >= start, "phases must be sorted");
                let span = next_start - start;
                if fraction + rate * span >= 1.0 {
                    return start + (1.0 - fraction) / rate;
                }
                fraction += rate * span;
            }
            None => {
                return start + (1.0 - fraction) / rate;
            }
        }
    }
    unreachable!("loop returns on the final phase");
}

/// Makespan of the reduction's intended schedule for a given partition of
/// `{0, …, 3m−1}` into triples: every task starts on one processor; when a
/// small task of triple `k` finishes, its processor joins large task `k`.
///
/// # Panics
/// Panics if `partition` is not a permutation of the small-task indices in
/// triples.
#[must_use]
pub fn makespan_for_partition(inst: &ThreePartition, partition: &[[usize; 3]]) -> f64 {
    assert_eq!(partition.len(), inst.m(), "need m triples");
    let mut seen = vec![false; inst.items.len()];
    for triple in partition {
        for &i in triple {
            assert!(!seen[i], "index {i} reused");
            seen[i] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "all small tasks must be covered");

    let d = inst.deadline();
    let work = 4.0 * d - inst.b as f64;
    let mut makespan: f64 = 0.0;
    for triple in partition {
        // Small tasks run alone on one processor: finish at a_i < D.
        let mut ends: Vec<f64> = triple.iter().map(|&i| inst.items[i] as f64).collect();
        ends.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for &e in &ends {
            makespan = makespan.max(e);
        }
        // The large task starts on 1 processor and gains one per completion.
        let large = GadgetTask::Large { work };
        let phases = [(0.0, 1u32), (ends[0], 2), (ends[1], 3), (ends[2], 4)];
        makespan = makespan.max(malleable_finish(&large, &phases));
    }
    makespan
}

/// Brute-force search for a perfect 3-partition (each triple sums to `B`).
/// Exponential; intended for `m ≤ 4`.
#[must_use]
pub fn find_partition(inst: &ThreePartition) -> Option<Vec<[usize; 3]>> {
    let n = inst.items.len();
    let mut used = vec![false; n];
    let mut triples = Vec::with_capacity(inst.m());
    if search(inst, &mut used, &mut triples) {
        Some(triples)
    } else {
        None
    }
}

fn search(inst: &ThreePartition, used: &mut [bool], triples: &mut Vec<[usize; 3]>) -> bool {
    let n = inst.items.len();
    // Lowest unused index anchors the next triple (canonical form kills
    // permutation symmetry).
    let Some(first) = (0..n).find(|&i| !used[i]) else {
        return true;
    };
    used[first] = true;
    for second in first + 1..n {
        if used[second] || inst.items[first] + inst.items[second] >= inst.b {
            continue;
        }
        used[second] = true;
        for third in second + 1..n {
            if used[third]
                || inst.items[first] + inst.items[second] + inst.items[third] != inst.b
            {
                continue;
            }
            used[third] = true;
            triples.push([first, second, third]);
            if search(inst, used, triples) {
                return true;
            }
            triples.pop();
            used[third] = false;
        }
        used[second] = false;
    }
    used[first] = false;
    false
}

/// Decision procedure for small instances: does a schedule of makespan `D`
/// exist? Equivalent (Theorem 2) to the 3-partition question.
#[must_use]
pub fn has_deadline_schedule(inst: &ThreePartition) -> bool {
    find_partition(inst).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// m = 2, B = 100, solvable: {33, 33, 34} and {26, 35, 39}.
    fn yes_instance() -> ThreePartition {
        ThreePartition::new(100, vec![33, 33, 34, 26, 35, 39])
    }

    /// m = 2, B = 100, all items odd ⇒ every triple sum is odd ≠ 100.
    fn no_instance() -> ThreePartition {
        ThreePartition::new(100, vec![27, 29, 31, 37, 39, 37])
    }

    #[test]
    fn instance_validation() {
        let inst = yes_instance();
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.deadline(), 40.0);
    }

    #[test]
    #[should_panic(expected = "outside (B/4, B/2)")]
    fn rejects_out_of_range_items() {
        let _ = ThreePartition::new(100, vec![25, 40, 35, 30, 40, 30]);
    }

    #[test]
    #[should_panic(expected = "sum to m·B")]
    fn rejects_bad_total() {
        let _ = ThreePartition::new(100, vec![33, 33, 33, 26, 35, 39]);
    }

    #[test]
    fn task_profiles_match_reduction() {
        let inst = yes_instance();
        let tasks = build_tasks(&inst);
        assert_eq!(tasks.len(), 8);
        // Small task: t(1) = a, t(j>1) = 3a/4, work strictly increasing.
        assert_eq!(tasks[0].time(1), 33.0);
        assert_eq!(tasks[0].time(2), 24.75);
        assert!(tasks[0].work(2) > tasks[0].work(1));
        // Large task: work conserved up to 4 procs, inflated beyond.
        let d = inst.deadline();
        let w = 4.0 * d - 100.0;
        assert_eq!(tasks[6].time(1), w);
        assert_eq!(tasks[6].time(4), w / 4.0);
        assert!((tasks[6].work(4) - w).abs() < 1e-12);
        assert!(tasks[6].work(5) > w);
    }

    #[test]
    fn times_non_increasing_work_non_decreasing() {
        let inst = yes_instance();
        for task in build_tasks(&inst) {
            let mut last_t = f64::INFINITY;
            let mut last_w = 0.0;
            for j in 1..=8 {
                let t = task.time(j);
                let w = task.work(j);
                assert!(t <= last_t + 1e-12, "time increased at j={j}");
                assert!(w >= last_w - 1e-12, "work decreased at j={j}");
                last_t = t;
                last_w = w;
            }
        }
    }

    #[test]
    fn malleable_finish_constant_profile() {
        let task = GadgetTask::Large { work: 60.0 };
        // 1 processor throughout: finishes at 60.
        assert!((malleable_finish(&task, &[(0.0, 1)]) - 60.0).abs() < 1e-12);
        // 4 processors throughout: 15.
        assert!((malleable_finish(&task, &[(0.0, 4)]) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn malleable_finish_with_growth() {
        // Work 60; 1 proc for 10 units (10 done), then 2 procs: remaining 50
        // at rate 2 → 25 more; finish at 35.
        let task = GadgetTask::Large { work: 60.0 };
        let finish = malleable_finish(&task, &[(0.0, 1), (10.0, 2)]);
        assert!((finish - 35.0).abs() < 1e-12);
    }

    #[test]
    fn yes_instance_achieves_deadline() {
        let inst = yes_instance();
        let partition = find_partition(&inst).expect("solvable");
        let makespan = makespan_for_partition(&inst, &partition);
        // Perfect partition ⇒ every large task ends exactly at D.
        assert!(
            (makespan - inst.deadline()).abs() < 1e-9,
            "makespan {makespan} vs D {}",
            inst.deadline()
        );
    }

    #[test]
    fn closed_form_for_unbalanced_partition() {
        // Finish of triple k is D + (S_k − B)/4.
        let inst = yes_instance();
        let unbalanced = [[0usize, 1, 3], [2, 4, 5]]; // sums 92 and 108
        let makespan = makespan_for_partition(&inst, &unbalanced);
        let d = inst.deadline();
        assert!(
            (makespan - (d + 8.0 / 4.0)).abs() < 1e-9,
            "makespan {makespan}, expected {}",
            d + 2.0
        );
        assert!(makespan > d);
    }

    #[test]
    fn no_instance_misses_deadline() {
        let inst = no_instance();
        assert!(!has_deadline_schedule(&inst));
        // Every partition of a no-instance exceeds D.
        let d = inst.deadline();
        let indices = [[0usize, 1, 2], [3, 4, 5]];
        assert!(makespan_for_partition(&inst, &indices) > d);
    }

    #[test]
    fn decision_matches_partition_existence() {
        assert!(has_deadline_schedule(&yes_instance()));
        assert!(!has_deadline_schedule(&no_instance()));
    }

    #[test]
    fn larger_yes_instance() {
        // m = 3, B = 90: triples {29, 30, 31} × 3 shuffled.
        let inst = ThreePartition::new(90, vec![29, 31, 29, 30, 31, 30, 30, 29, 31]);
        let partition = find_partition(&inst).expect("solvable");
        assert_eq!(partition.len(), 3);
        for triple in &partition {
            let sum: u64 = triple.iter().map(|&i| inst.items[i]).sum();
            assert_eq!(sum, 90);
        }
        let makespan = makespan_for_partition(&inst, &partition);
        assert!((makespan - inst.deadline()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn partition_validation_catches_duplicates() {
        let inst = yes_instance();
        let _ = makespan_for_partition(&inst, &[[0, 0, 1], [2, 3, 4]]);
    }
}
