//! Persistent incremental policy state: epoch-invalidated session overlays.
//!
//! The from-scratch heuristics rebuild their planning lists — one entry per
//! eligible task, each needing an `α^t` progress evaluation — at *every*
//! decision event, so a single task end costs `O(n)` even when the paper's
//! redistribution only moves processors between a handful of donors and one
//! recipient. The incremental engine keeps the per-task finish-time keys in
//! the pack state's persistent event queues (committed `t^U_i`, maintained
//! by `set_t_u`/`complete`) and materializes planning entries *lazily*:
//! only tasks actually considered by a decision session — the head chain of
//! `EndLocal`, the donor chain of `ShortestTasksFirst` — are adopted into a
//! [`SessionOverlay`], so per-event work scales with the affected set, not
//! the pack.
//!
//! A session is invalidated in O(1) by bumping an epoch counter
//! ([`IncrementalState::begin_session`]); the arrays indexed by task id are
//! reused across events and never cleared. Entries popped out of the
//! persistent queues during a session (ineligible or adopted tasks) are
//! stashed and re-pushed at session end, so the queues survive the event
//! untouched except for the values the commit rewrites anyway.
//!
//! Correctness is enforced the same way PR 2 guarded the heap/scan swap: in
//! debug builds every incremental decision is replayed from scratch on a
//! cloned pack state (the crate-private `CrossCheck`) and the assignment is
//! compared field-for-field, keeping seeded runs byte-identical by
//! construction.

use redistrib_model::TaskId;

use crate::ctx::PlanEntry;
use crate::heap::StashEntry;

/// Safety margin applied to the analytic redistribution-cost floors below,
/// so that inequalities proven in real arithmetic stay sound under f64
/// rounding (the slack is ~1e-3 relative, orders of magnitude beyond any
/// accumulated ulp error in the few additions involved; the debug
/// cross-checks validate the pruned decisions against the unpruned
/// reference on every event).
///
/// The floors themselves (Eqs. 7/9, `RC^{j→k} = max(min(j,k), |j−k|) ·
/// m/(j·k)`):
///
/// * *growth* `σ → σ+q`, `q ∈ [2, k]`: `RC ≥ m/(σ+k)` — for `q ≤ σ` the
///   cost is exactly `m/(σ+q) ≥ m/(σ+k)`; for `q > σ` it is
///   `q·m/((σ+q)σ) > m/(σ+k)` because `qk > σ²`;
/// * *shrink* `σ → σ−q`, `q ≥ 1`: `RC ≥ m/σ` — the round count
///   `max(σ−q, q) ≥ (σ−q)` gives `RC ≥ m/σ`, and for `q > σ−q` it is
///   larger still.
///
/// Every candidate finish time of a *moving* task is `now + RC + …` with
/// all other terms non-negative, so a task whose committed `t^U − now` is
/// at or below its floor provably cannot strictly improve — the
/// incremental policies drop it (or stop the whole head scan, since heads
/// arrive in decreasing `t^U`) without a single model evaluation.
pub const RC_FLOOR_SAFETY: f64 = 0.999;

/// Task `i`'s *shrink* floor key, `RC_FLOOR_SAFETY · m/σ` — the certified
/// minimum redistribution cost of any move *below* a committed allocation
/// of `σ` processors. Growth is NOT bounded by this floor (growing to
/// `σ+q`, `q ≤ k`, can cost as little as `m/(σ+k)`); the warm-start
/// certificate only needs the shrink direction, see `policies::greedy`.
///
/// One shared helper so the persistent floor queue
/// (`PackState::set_greedy_floor`) and its lazy revalidation recompute
/// bit-identical keys: the maintenance contract compares stored against
/// recomputed values with `==`.
#[must_use]
pub fn greedy_floor(m: f64, sigma: u32) -> f64 {
    RC_FLOOR_SAFETY * m / f64::from(sigma)
}

/// The floor-queue *derivation rule* shared by every maintenance site
/// (initialization, committed plans, online admission grants): a task
/// constrains the warm-start certificate only while it holds `σ ≥ 4` (a
/// two-processor task has no shrink walk to certify). One helper so the
/// sites cannot drift — the certificate's exactness contract compares
/// stored against recomputed keys with bit equality.
#[must_use]
pub fn greedy_floor_key(m: f64, sigma: u32) -> Option<f64> {
    (sigma >= 4).then(|| greedy_floor(m, sigma))
}

/// Warm-start bookkeeping of the greedy rebuild (Algorithm 5), persistent
/// across a run in [`crate::ctx::PolicyScratch`]: how many live-view
/// invocations resumed from the committed allocation versus fell back to
/// the two-processor reset because the certificate failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyWarmStats {
    /// Invocations that resumed from the previous (committed) allocation.
    pub warm: u64,
    /// Invocations that re-ran the from-scratch reset (certificate failed).
    pub fallback: u64,
}

/// Epoch-invalidated persistent planning state: reset in O(1) at each
/// decision event, with storage reused across the whole run.
pub trait IncrementalState {
    /// Opens a session over `n` tasks: bumps the epoch (logically clearing
    /// all per-task marks) and sizes the index arrays on first use.
    fn begin_session(&mut self, n: usize);
}

/// One task's session-local planning record.
#[derive(Debug, Clone, Copy)]
pub struct OverlayEntry {
    /// The plan under construction (same shape as the from-scratch lists).
    pub plan: PlanEntry,
    /// Dropped from consideration for the rest of the session (`EndLocal`'s
    /// "cannot improve" removal).
    pub dropped: bool,
}

/// The dirty set of one decision session: tasks whose planned allocation
/// diverged from the committed state, plus the bookkeeping to skip them in
/// persistent-queue queries.
///
/// Only touched slots are written per session; `touched[i] == epoch` marks
/// task `i` as owned by the current session, everything else is stale data
/// from former epochs and never read.
#[derive(Debug, Default)]
pub struct SessionOverlay {
    epoch: u64,
    /// `touched[i] == epoch` ⇔ task `i` has an overlay entry this session.
    touched: Vec<u64>,
    /// Overlay index of touched tasks (valid only when touched).
    slot: Vec<u32>,
    /// Session entries, in adoption order.
    entries: Vec<OverlayEntry>,
    /// Persistent-queue entries popped during this session, re-pushed at
    /// session end (see [`crate::heap::LazyHeapCore::restore`]).
    pub stash: Vec<StashEntry>,
}

impl IncrementalState for SessionOverlay {
    fn begin_session(&mut self, n: usize) {
        self.epoch += 1;
        if self.touched.len() < n {
            self.touched.resize(n, 0);
            self.slot.resize(n, 0);
        }
        self.entries.clear();
        debug_assert!(self.stash.is_empty(), "previous session did not restore its stash");
    }
}

impl SessionOverlay {
    /// Whether task `i` has an overlay entry in the current session.
    #[must_use]
    pub fn is_touched(&self, i: TaskId) -> bool {
        self.touched.get(i).is_some_and(|&e| e == self.epoch)
    }

    /// Adopts a task into the session, returning its overlay slot.
    ///
    /// # Panics
    /// Panics (debug) if the task is already touched.
    pub fn adopt(&mut self, plan: PlanEntry) -> usize {
        let i = plan.task;
        debug_assert!(!self.is_touched(i), "task {i} adopted twice in one session");
        self.touched[i] = self.epoch;
        let slot = self.entries.len();
        self.slot[i] = slot as u32;
        self.entries.push(OverlayEntry { plan, dropped: false });
        slot
    }

    /// The overlay entry at `slot`.
    #[must_use]
    pub fn entry(&self, slot: usize) -> &OverlayEntry {
        &self.entries[slot]
    }

    /// Mutable overlay entry at `slot`.
    pub fn entry_mut(&mut self, slot: usize) -> &mut OverlayEntry {
        &mut self.entries[slot]
    }

    /// Number of entries adopted this session.
    #[must_use]
    pub fn touched_count(&self) -> usize {
        self.entries.len()
    }

    /// The non-dropped overlay entry with the *largest* planned finish
    /// time, `(slot, task, t_u)`; ties toward the lowest task id. Linear in
    /// the overlay — the affected set, not the pack.
    #[must_use]
    pub fn best_max(&self) -> Option<(usize, TaskId, f64)> {
        let mut best: Option<(usize, TaskId, f64)> = None;
        for (s, e) in self.entries.iter().enumerate() {
            if e.dropped {
                continue;
            }
            let (t, v) = (e.plan.task, e.plan.t_u);
            let wins = match best {
                None => true,
                Some((_, bt, bv)) => v > bv || (v == bv && t < bt),
            };
            if wins {
                best = Some((s, t, v));
            }
        }
        best
    }

    /// The overlay donor — non-dropped, non-faulty, planned `σ ≥ 4` — with
    /// the *smallest* planned finish time, `(slot, task, t_u)`; ties toward
    /// the lowest task id (`ShortestTasksFirst`'s steal target).
    #[must_use]
    pub fn best_min_donor(&self) -> Option<(usize, TaskId, f64)> {
        let mut best: Option<(usize, TaskId, f64)> = None;
        for (s, e) in self.entries.iter().enumerate() {
            if e.dropped || e.plan.faulty || e.plan.sigma < 4 {
                continue;
            }
            let (t, v) = (e.plan.task, e.plan.t_u);
            let wins = match best {
                None => true,
                Some((_, bt, bv)) => v < bv || (v == bv && t < bt),
            };
            if wins {
                best = Some((s, t, v));
            }
        }
        best
    }

    /// Drains the session's plans into `out`, sorted by ascending task id —
    /// the commit order the from-scratch heuristics produce (their planning
    /// lists are built over the ascending-id eligible list), which the
    /// deterministic processor moves depend on.
    pub fn drain_plans_sorted(&mut self, out: &mut Vec<PlanEntry>) {
        out.clear();
        out.extend(self.entries.iter().map(|e| e.plan));
        out.sort_unstable_by_key(|e| e.task);
        self.entries.clear();
    }
}

/// Resolves a session's next working entry: the fresh persistent-queue
/// candidate versus the best overlay entry, with ties toward the lowest
/// task id — exactly the order of the reference planning heap over the
/// ascending-id eligible list. A winning fresh candidate is handed to
/// `adopt` (which pops its live queue entry and builds its overlay plan);
/// either way the session entry's slot comes back, or `None` when both
/// sides are exhausted.
///
/// `fresh_beats` is the strict value comparison of the queue's direction
/// (`>` for the latest-finish head chain, `<` for the shortest-donor
/// chain), shared so the two incremental policies cannot drift apart on
/// the arbitration rule.
pub(crate) fn pick_session_entry(
    fresh: Option<(TaskId, f64)>,
    overlay_best: Option<(usize, TaskId, f64)>,
    fresh_beats: impl Fn(f64, f64) -> bool,
    adopt: impl FnOnce(TaskId, f64) -> usize,
) -> Option<usize> {
    match (fresh, overlay_best) {
        (None, None) => None,
        (Some((i, v)), over) => {
            let fresh_wins = match over {
                None => true,
                Some((_, ot, ov)) => fresh_beats(v, ov) || (v == ov && i < ot),
            };
            if fresh_wins {
                Some(adopt(i, v))
            } else {
                Some(over.expect("fresh lost to an overlay entry").0)
            }
        }
        (None, Some((s, _, _))) => Some(s),
    }
}

/// Debug-build replay of an incremental decision against the from-scratch
/// reference implementation, on a cloned pack state — the correctness net
/// that keeps seeded runs byte-identical (PR 2's heap/scan pattern, one
/// level up).
#[cfg(debug_assertions)]
pub(crate) struct CrossCheck {
    state: crate::state::PackState,
    eligible: Vec<TaskId>,
    redistributions_before: u64,
}

#[cfg(debug_assertions)]
impl CrossCheck {
    /// Snapshots the pack state and materializes the eligible list before
    /// the incremental decision runs.
    pub(crate) fn begin(ctx: &crate::ctx::HeuristicCtx<'_>) -> Self {
        let mut eligible = Vec::new();
        ctx.for_each_eligible(|i| eligible.push(i));
        Self {
            state: ctx.state.clone(),
            eligible,
            redistributions_before: *ctx.redistributions,
        }
    }

    /// Replays `run_reference` on the snapshot (from-scratch path, explicit
    /// list) and asserts the outcome matches what the incremental decision
    /// left in `ctx.state` — bit patterns, processor ids and all.
    ///
    /// # Panics
    /// Panics on any divergence.
    pub(crate) fn verify(
        self,
        ctx: &crate::ctx::HeuristicCtx<'_>,
        run_reference: impl FnOnce(&mut crate::ctx::HeuristicCtx<'_>),
    ) {
        let CrossCheck { mut state, eligible, redistributions_before } = self;
        let mut trace = redistrib_sim::trace::TraceLog::disabled();
        let mut scratch = crate::ctx::PolicyScratch::default();
        let mut count = redistributions_before;
        let mut ref_ctx = crate::ctx::HeuristicCtx {
            calc: ctx.calc,
            state: &mut state,
            trace: &mut trace,
            now: ctx.now,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: ctx.pseudocode_fault_bias,
            redistributions: &mut count,
        };
        run_reference(&mut ref_ctx);
        assert_eq!(
            count, *ctx.redistributions,
            "incremental/reference redistribution-count divergence"
        );
        assert!(state.assignment_eq(ctx.state), "incremental/reference state divergence");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(task: TaskId, sigma: u32, t_u: f64) -> PlanEntry {
        PlanEntry { task, sigma_init: sigma, sigma, alpha_t: 1.0, t_u, faulty: false }
    }

    #[test]
    fn epoch_bump_clears_touched_in_o1() {
        let mut o = SessionOverlay::default();
        o.begin_session(4);
        o.adopt(plan(2, 4, 10.0));
        assert!(o.is_touched(2));
        o.begin_session(4);
        assert!(!o.is_touched(2));
        assert_eq!(o.touched_count(), 0);
    }

    #[test]
    fn best_max_ignores_dropped_and_breaks_ties_low() {
        let mut o = SessionOverlay::default();
        o.begin_session(8);
        let s0 = o.adopt(plan(5, 4, 20.0));
        o.adopt(plan(1, 4, 20.0));
        o.adopt(plan(3, 4, 7.0));
        assert_eq!(o.best_max(), Some((1, 1, 20.0)));
        o.entry_mut(1).dropped = true;
        assert_eq!(o.best_max(), Some((s0, 5, 20.0)));
    }

    #[test]
    fn best_min_donor_filters_sigma_and_faulty() {
        let mut o = SessionOverlay::default();
        o.begin_session(8);
        o.adopt(plan(0, 2, 1.0)); // too small to donate
        let mut f = plan(1, 8, 2.0);
        f.faulty = true;
        o.adopt(f); // faulty: never a donor
        let s = o.adopt(plan(2, 4, 3.0));
        assert_eq!(o.best_min_donor(), Some((s, 2, 3.0)));
    }

    #[test]
    fn drain_sorts_by_task_id() {
        let mut o = SessionOverlay::default();
        o.begin_session(8);
        o.adopt(plan(5, 4, 1.0));
        o.adopt(plan(1, 4, 2.0));
        o.adopt(plan(3, 4, 3.0));
        let mut out = Vec::new();
        o.drain_plans_sorted(&mut out);
        let ids: Vec<TaskId> = out.iter().map(|e| e.task).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(o.touched_count(), 0);
    }

    #[test]
    fn lazily_grows_to_task_count() {
        let mut o = SessionOverlay::default();
        o.begin_session(2);
        o.begin_session(16);
        o.adopt(plan(15, 4, 1.0));
        assert!(o.is_touched(15));
    }
}
