//! Shared context and plumbing for the redistribution heuristics.
//!
//! A [`HeuristicCtx`] is handed to the end/fault policies by the engine at
//! each decision point. It bundles shared access to the time calculator,
//! mutable access to the pack state and the trace, reusable
//! [`PolicyScratch`] buffers (so steady-state policy invocations allocate
//! nothing), and provides the two operations every heuristic of the paper
//! is built from:
//!
//! * evaluating a *candidate* finish time for a task on a different
//!   allocation (including redistribution cost, the post-redistribution
//!   checkpoint, and — for the faulty task — downtime and recovery);
//! * *committing* a set of planned reallocations (processors move, anchors
//!   `tlastR_i`, fractions `α_i` and expected finish times `t^U_i` are
//!   updated, trace records are emitted).

use redistrib_model::{TaskId, TimeCalc};
use redistrib_sim::trace::{TraceEvent, TraceLog};

use crate::heap::LazyMaxHeap;
use crate::incremental::{GreedyWarmStats, SessionOverlay};
use crate::state::PackState;

/// Persistent policy planning state, owned by the engine and threaded
/// through [`HeuristicCtx`]: after warm-up, policy invocations reuse these
/// allocations instead of building fresh `Vec`s per event, and the
/// incremental policies keep their epoch-invalidated session overlay here
/// across the whole run.
///
/// Policies `std::mem::take` the pieces they need and put them back before
/// returning (the take/restore dance keeps the borrow checker happy while
/// `ctx` methods are called in between).
#[derive(Debug, Default)]
pub struct PolicyScratch {
    /// Per-candidate planning entries.
    pub entries: Vec<PlanEntry>,
    /// Committed plans.
    pub plans: Vec<Plan>,
    /// Heap seed values.
    pub values: Vec<f64>,
    /// Planning heap ("the task with the longest planned finish time").
    pub heap: LazyMaxHeap,
    /// Incremental session overlay (dirty set + stash), persistent across
    /// events with O(1) epoch invalidation.
    pub overlay: SessionOverlay,
    /// Greedy warm-start counters (warm resumes vs reset fallbacks).
    pub greedy_stats: GreedyWarmStats,
}

/// The tasks allowed to participate in a redistribution decision.
///
/// The from-scratch path materializes the list up front (`Listed`); the
/// incremental path derives membership lazily from the pack state
/// (`Live`), so an event only pays for the tasks its decision actually
/// touches. Both views contain exactly the same tasks in ascending-id
/// order: active, started, outside any previous redistribution window
/// (`tlastR_i ≤ now`), not the skipped (faulty) task, and — the online
/// engine's fault path — not finishing before `min_t_u` (the recovery
/// anchor; the static engine has already completed those).
#[derive(Debug, Clone, Copy)]
pub enum EligibleSet<'a> {
    /// Explicit ascending-id task list (tests, reference replays).
    Listed(&'a [TaskId]),
    /// Membership derived from the pack state at query time.
    Live {
        /// The faulty task, excluded from the participant set.
        skip: Option<TaskId>,
        /// Minimum expected finish time to participate
        /// (`f64::NEG_INFINITY` when unused).
        min_t_u: f64,
    },
}

impl EligibleSet<'static> {
    /// Live view with no excluded task and no finish-time floor (task-end
    /// and arrival decision points).
    #[must_use]
    pub fn live() -> Self {
        EligibleSet::Live { skip: None, min_t_u: f64::NEG_INFINITY }
    }

    /// Live view for a fault decision point: the faulty task is handled
    /// separately by the policy, and (online engine) tasks finishing
    /// before `min_t_u` are out.
    #[must_use]
    pub fn live_fault(faulty: TaskId, min_t_u: f64) -> Self {
        EligibleSet::Live { skip: Some(faulty), min_t_u }
    }
}

/// One candidate's planning state inside a heuristic invocation (shared by
/// `EndLocal`, `ShortestTasksFirst` and the greedy rebuild).
#[derive(Debug, Clone, Copy)]
pub struct PlanEntry {
    /// The task.
    pub task: TaskId,
    /// Allocation at heuristic entry (`σ_init`; data currently lives here).
    pub sigma_init: u32,
    /// Currently planned allocation.
    pub sigma: u32,
    /// Remaining fraction measured at `now`.
    pub alpha_t: f64,
    /// Currently planned finish time.
    pub t_u: f64,
    /// Whether this is the faulty task.
    pub faulty: bool,
}

/// Mutable view the engine hands to the redistribution policies.
#[derive(Debug)]
pub struct HeuristicCtx<'a> {
    /// Time calculator (mode decides fault-aware vs fault-free math).
    pub calc: &'a TimeCalc,
    /// Pack state (allocation sizes, processor ownership, task runtimes).
    pub state: &'a mut PackState,
    /// Trace sink (may be disabled).
    pub trace: &'a mut TraceLog,
    /// Decision time `t` (a task end or a failure).
    pub now: f64,
    /// Tasks allowed to participate: active, not the faulty task, and not
    /// inside a previous redistribution window (`tlastR_i ≤ now`).
    pub eligible: EligibleSet<'a>,
    /// Reusable planning buffers.
    pub scratch: &'a mut PolicyScratch,
    /// Ablation flag: when true, the faulty task's candidate finish times
    /// omit downtime + recovery, as in the literal pseudocode of
    /// Algorithms 4–5 (see DESIGN.md). Default false (follow §3.3.2 text).
    pub pseudocode_fault_bias: bool,
    /// Counter of committed reallocations (one per task whose σ changed).
    pub redistributions: &'a mut u64,
}

/// One task's planned reallocation inside a heuristic invocation.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// The task.
    pub task: TaskId,
    /// Allocation at heuristic entry (`σ_init`; data currently lives here).
    pub sigma_init: u32,
    /// Planned allocation.
    pub sigma_new: u32,
    /// Remaining fraction measured at `now` (`α^t_i`; for the faulty task,
    /// the post-rollback `α_f`).
    pub alpha_t: f64,
    /// Whether this is the faulty task (adds downtime + recovery to the
    /// redistribution overhead unless the bias flag is set).
    pub faulty: bool,
}

impl HeuristicCtx<'_> {
    /// Whether task `i` participates in this decision (see
    /// [`EligibleSet`]). For a `Live` view the check reads the pack state;
    /// for a `Listed` view it scans the slice (reference replays only).
    #[must_use]
    pub fn is_eligible(&self, i: TaskId) -> bool {
        match self.eligible {
            EligibleSet::Listed(list) => list.contains(&i),
            EligibleSet::Live { skip, min_t_u } => {
                let rt = self.state.runtime(i);
                Some(i) != skip
                    && !rt.done
                    && self.state.is_started(i)
                    && rt.t_last_r <= self.now
                    && rt.t_u >= min_t_u
            }
        }
    }

    /// Visits every eligible task in ascending-id order (the deterministic
    /// list order all heuristics assume).
    pub fn for_each_eligible(&self, mut f: impl FnMut(TaskId)) {
        match self.eligible {
            EligibleSet::Listed(list) => list.iter().copied().for_each(f),
            EligibleSet::Live { .. } => {
                // Iterate the still-active ids (ascending, a subset of
                // 0..n with identical eligibility outcomes) so the pass
                // scales with the live pack, not every task ever seen.
                for &i in self.state.active_ids() {
                    if self.is_eligible(i) {
                        f(i);
                    }
                }
            }
        }
    }

    /// Remaining fraction of work of a *non-faulty* task measured at `now`
    /// (the `α^t_i` of Algorithms 3–5): the stored `α_i` minus the progress
    /// since the task's anchor, clamped to `[0, α_i]`.
    pub fn alpha_current(&mut self, i: TaskId) -> f64 {
        let rt = *self.state.runtime(i);
        debug_assert!(!rt.done, "alpha_current on a completed task");
        let elapsed = self.now - rt.t_last_r;
        debug_assert!(
            elapsed >= -1e-9,
            "task {i} is mid-redistribution (anchor in the future)"
        );
        let progress = self.calc.progress_nonfaulty(i, self.state.sigma(i), elapsed.max(0.0));
        (rt.alpha - progress).max(0.0)
    }

    /// Extra overhead in front of a redistribution of the faulty task:
    /// downtime plus recovery on the old allocation (§3.3.2 text), or zero
    /// under the pseudocode-bias ablation.
    pub fn fault_overhead(&mut self, i: TaskId, sigma_init: u32) -> f64 {
        if self.pseudocode_fault_bias {
            0.0
        } else {
            self.calc.downtime() + self.calc.recovery_time(i, sigma_init)
        }
    }

    /// Candidate absolute finish time `t^E` of task `i` if its allocation
    /// became `cand` (data moving from `sigma_init`):
    ///
    /// * `cand == sigma_init` — the task simply continues: the finish time
    ///   is `tlastR_i + remaining(σ_init, α_i)` (no cost; Algorithm 5
    ///   line 16);
    /// * otherwise — `now (+ D + R for the faulty task) + RC^{σ_init→cand}
    ///   + C_{i,cand} + remaining(cand, α^t_i)`.
    pub fn candidate_finish(
        &mut self,
        i: TaskId,
        sigma_init: u32,
        cand: u32,
        alpha_t: f64,
        faulty: bool,
    ) -> f64 {
        if cand == sigma_init {
            let rt = *self.state.runtime(i);
            return rt.t_last_r + self.calc.remaining(i, cand, rt.alpha);
        }
        let overhead = if faulty { self.fault_overhead(i, sigma_init) } else { 0.0 };
        // Single parameter fetch for (C, remaining); the addition order is
        // exactly the historical `rc + C + remaining` chain.
        let (ckpt, remaining) = self.calc.ckpt_and_remaining(i, cand, alpha_t);
        self.now + overhead + self.calc.rc_cost(i, sigma_init, cand) + ckpt + remaining
    }

    /// Applies a set of plans: shrinks first (to refill the free pool), then
    /// grows; updates every changed task's `α`, `tlastR`, `t^U`, emits trace
    /// records and bumps the redistribution counter.
    ///
    /// Plans with `sigma_new == sigma_init` are no-ops (the paper only
    /// updates tasks whose allocation actually changed).
    pub fn commit(&mut self, plans: &[Plan]) {
        for plan in plans.iter().filter(|p| p.sigma_new < p.sigma_init) {
            self.state.shrink(plan.task, plan.sigma_init - plan.sigma_new);
            self.apply_bookkeeping(plan);
        }
        for plan in plans.iter().filter(|p| p.sigma_new > p.sigma_init) {
            self.state.grow(plan.task, plan.sigma_new - plan.sigma_init);
            self.apply_bookkeeping(plan);
        }
    }

    /// Commits the planning entries whose allocation changed, using (and
    /// restoring) the scratch plan buffer — the zero-alloc variant of
    /// [`HeuristicCtx::commit`] shared by all policies.
    pub fn commit_entries(&mut self) {
        let mut plans = std::mem::take(&mut self.scratch.plans);
        let entries = std::mem::take(&mut self.scratch.entries);
        plans.clear();
        plans.extend(entries.iter().filter(|e| e.sigma != e.sigma_init).map(|e| Plan {
            task: e.task,
            sigma_init: e.sigma_init,
            sigma_new: e.sigma,
            alpha_t: e.alpha_t,
            faulty: e.faulty,
        }));
        self.commit(&plans);
        self.scratch.plans = plans;
        self.scratch.entries = entries;
    }

    fn apply_bookkeeping(&mut self, plan: &Plan) {
        if self.state.greedy_floors_ready() {
            // Keep the persistent warm-start floor queue exact: every
            // committed allocation change re-derives the moved task's key.
            let floor = crate::incremental::greedy_floor_key(
                self.calc.task_size(plan.task),
                plan.sigma_new,
            );
            self.state.set_greedy_floor(plan.task, floor);
        }
        let rc = self.calc.rc_cost(plan.task, plan.sigma_init, plan.sigma_new);
        let overhead =
            if plan.faulty { self.fault_overhead(plan.task, plan.sigma_init) } else { 0.0 };
        let ckpt = self.calc.checkpoint_cost(plan.task, plan.sigma_new);
        let anchor = self.now + overhead + rc + ckpt;
        let remaining = self.calc.remaining(plan.task, plan.sigma_new, plan.alpha_t);
        let rt = self.state.runtime_mut(plan.task);
        rt.alpha = plan.alpha_t;
        rt.t_last_r = anchor;
        self.state.set_t_u(plan.task, anchor + remaining);
        *self.redistributions += 1;
        self.trace.push(TraceEvent::Redistribution {
            time: self.now,
            task: plan.task,
            from: plan.sigma_init,
            to: plan.sigma_new,
            cost: rc,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::units;
    use std::sync::Arc;

    fn fixture() -> (TimeCalc, PackState) {
        let workload = Workload::new(
            vec![TaskSpec::new(2.0e6), TaskSpec::new(1.6e6), TaskSpec::new(1.8e6)],
            Arc::new(PaperModel::default()),
        );
        let platform = Platform::with_mtbf(20, units::years(100.0));
        let calc = TimeCalc::new(workload, platform);
        let mut state = PackState::new(20, &[4, 4, 4]);
        for i in 0..3 {
            let tu = calc.remaining(i, 4, 1.0);
            state.set_t_u(i, tu);
        }
        (calc, state)
    }

    fn ctx<'a>(
        calc: &'a TimeCalc,
        state: &'a mut PackState,
        trace: &'a mut TraceLog,
        scratch: &'a mut PolicyScratch,
        now: f64,
        eligible: &'a [TaskId],
        count: &'a mut u64,
    ) -> HeuristicCtx<'a> {
        HeuristicCtx {
            calc,
            state,
            trace,
            now,
            eligible: EligibleSet::Listed(eligible),
            scratch,
            pseudocode_fault_bias: false,
            redistributions: count,
        }
    }

    #[test]
    fn alpha_current_decreases_with_time() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize, 1, 2];
        let t_half = state.runtime(0).t_u * 0.5;
        let mut c =
            ctx(&calc, &mut state, &mut trace, &mut scratch, t_half, &eligible, &mut count);
        let a = c.alpha_current(0);
        assert!(a > 0.0 && a < 1.0, "alpha = {a}");
    }

    #[test]
    fn alpha_current_zero_elapsed_is_full() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize];
        let mut c =
            ctx(&calc, &mut state, &mut trace, &mut scratch, 0.0, &eligible, &mut count);
        assert_eq!(c.alpha_current(0), 1.0);
    }

    #[test]
    fn candidate_same_allocation_is_current_tu() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize, 1, 2];
        let t = 1000.0;
        let tu_before = state.runtime(1).t_u;
        let mut c = ctx(&calc, &mut state, &mut trace, &mut scratch, t, &eligible, &mut count);
        let alpha_t = c.alpha_current(1);
        let te = c.candidate_finish(1, 4, 4, alpha_t, false);
        assert!((te - tu_before).abs() < 1e-6, "{te} vs {tu_before}");
    }

    #[test]
    fn candidate_move_includes_costs() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize, 1, 2];
        let t = 1000.0;
        let mut c = ctx(&calc, &mut state, &mut trace, &mut scratch, t, &eligible, &mut count);
        let alpha_t = c.alpha_current(0);
        let te = c.candidate_finish(0, 4, 6, alpha_t, false);
        let bare = t + c.calc.remaining(0, 6, alpha_t);
        let rc = c.calc.rc_cost(0, 4, 6);
        let ck = c.calc.checkpoint_cost(0, 6);
        assert!((te - (bare + rc + ck)).abs() < 1e-6);
    }

    #[test]
    fn faulty_candidate_pays_downtime_and_recovery() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [1usize, 2];
        let t = 1000.0;
        let mut c = ctx(&calc, &mut state, &mut trace, &mut scratch, t, &eligible, &mut count);
        let te_plain = c.candidate_finish(0, 4, 6, 0.9, false);
        let te_faulty = c.candidate_finish(0, 4, 6, 0.9, true);
        let overhead = c.calc.downtime() + c.calc.recovery_time(0, 4);
        assert!((te_faulty - te_plain - overhead).abs() < 1e-6);
    }

    #[test]
    fn bias_flag_removes_fault_overhead() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [1usize, 2];
        let mut c = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 1000.0,
            eligible: EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: true,
            redistributions: &mut count,
        };
        let te_plain = c.candidate_finish(0, 4, 6, 0.9, false);
        let te_faulty = c.candidate_finish(0, 4, 6, 0.9, true);
        assert!((te_faulty - te_plain).abs() < 1e-9);
    }

    #[test]
    fn commit_moves_processors_and_updates_runtime() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::enabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize, 1, 2];
        let t = 1000.0;
        let mut c = ctx(&calc, &mut state, &mut trace, &mut scratch, t, &eligible, &mut count);
        let a0 = c.alpha_current(0);
        let a1 = c.alpha_current(1);
        // Task 1 donates 2 procs, task 0 gains 2 + 2 free = grows to 8.
        c.commit(&[
            Plan { task: 1, sigma_init: 4, sigma_new: 2, alpha_t: a1, faulty: false },
            Plan { task: 0, sigma_init: 4, sigma_new: 8, alpha_t: a0, faulty: false },
        ]);
        assert_eq!(state.sigma(0), 8);
        assert_eq!(state.sigma(1), 2);
        assert_eq!(state.free_count(), 20 - 8 - 2 - 4);
        assert_eq!(count, 2);
        assert_eq!(trace.redistribution_count(), 2);
        assert!(state.check_invariants());
        // Anchors moved into the future (overheads are positive).
        assert!(state.runtime(0).t_last_r > t);
        assert!(state.runtime(1).t_last_r > t);
        assert!((state.runtime(0).alpha - a0).abs() < 1e-12);
    }

    #[test]
    fn commit_noop_plan_changes_nothing() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::enabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize];
        let tu = state.runtime(0).t_u;
        let mut c =
            ctx(&calc, &mut state, &mut trace, &mut scratch, 10.0, &eligible, &mut count);
        c.commit(&[Plan { task: 0, sigma_init: 4, sigma_new: 4, alpha_t: 0.9, faulty: false }]);
        assert_eq!(state.sigma(0), 4);
        assert_eq!(count, 0);
        assert_eq!(state.runtime(0).t_u, tu);
    }

    #[test]
    fn commit_entries_drains_scratch() {
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::enabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize, 1];
        scratch.entries.push(PlanEntry {
            task: 0,
            sigma_init: 4,
            sigma: 6,
            alpha_t: 1.0,
            t_u: 0.0,
            faulty: false,
        });
        scratch.entries.push(PlanEntry {
            task: 1,
            sigma_init: 4,
            sigma: 4, // unchanged: must not commit
            alpha_t: 1.0,
            t_u: 0.0,
            faulty: false,
        });
        let mut c =
            ctx(&calc, &mut state, &mut trace, &mut scratch, 10.0, &eligible, &mut count);
        c.commit_entries();
        assert_eq!(state.sigma(0), 6);
        assert_eq!(state.sigma(1), 4);
        assert_eq!(count, 1);
        // Buffers restored for reuse.
        assert!(!scratch.entries.is_empty());
    }

    #[test]
    fn commit_shrinks_before_growing() {
        // Growing by more than the free pool only works because the shrink
        // is applied first.
        let (calc, mut state) = fixture();
        let mut trace = TraceLog::disabled();
        let mut scratch = PolicyScratch::default();
        let mut count = 0;
        let eligible = [0usize, 1];
        state.set_sigma(0, 10); // free pool now 20-10-4-4 = 2
        let mut c =
            ctx(&calc, &mut state, &mut trace, &mut scratch, 10.0, &eligible, &mut count);
        c.commit(&[
            Plan { task: 1, sigma_init: 4, sigma_new: 8, alpha_t: 1.0, faulty: false },
            Plan { task: 0, sigma_init: 10, sigma_new: 4, alpha_t: 1.0, faulty: false },
        ]);
        assert_eq!(state.sigma(0), 4);
        assert_eq!(state.sigma(1), 8);
        assert!(state.check_invariants());
    }
}
