//! Algorithm 1: optimal schedule without redistribution.
//!
//! Greedy processor allocation (Theorem 1): start every task at two
//! processors (buddy checkpointing), then repeatedly give two more to the
//! task with the longest (effective, Eq. 6) expected execution time, as long
//! as that task can still strictly improve with the processors that remain.
//! If the longest task cannot improve, no allocation can reduce the pack's
//! makespan, and remaining processors are deliberately kept free for later
//! redistributions (line 9 of Algorithm 1).
//!
//! The same routine serves the fault-free setting (Figs. 5–6): with a
//! fault-free [`TimeCalc`] the expected times degenerate to the plain
//! `t_{i,j}`, recovering Optimal-1-Pack-Schedule of [Aupy et al. 2015]
//! restricted to even allocations.

use redistrib_model::TimeCalc;

use crate::error::ScheduleError;
use crate::heap::LazyMaxHeap;

/// Computes the optimal no-redistribution allocation `σ` for `p` processors.
///
/// Expected times are evaluated at full work (`α = 1`). The returned vector
/// has one even entry ≥ 2 per task and sums to at most `p`.
///
/// ```
/// use redistrib_core::optimal_schedule;
/// use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
/// use std::sync::Arc;
///
/// let workload = Workload::new(
///     vec![TaskSpec::new(2.5e6), TaskSpec::new(1.5e6)],
///     Arc::new(PaperModel::default()),
/// );
/// let calc = TimeCalc::new(workload, Platform::new(16));
/// let sigma = optimal_schedule(&calc, 16).unwrap();
/// assert_eq!(sigma.iter().sum::<u32>(), 16);
/// assert!(sigma[0] > sigma[1], "the bigger task gets more processors");
/// ```
///
/// # Errors
/// Returns [`ScheduleError::InsufficientProcessors`] if `p < 2n`.
pub fn optimal_schedule(calc: &TimeCalc, p: u32) -> Result<Vec<u32>, ScheduleError> {
    let n = calc.num_tasks();
    let needed = 2 * n as u32;
    if p < needed {
        return Err(ScheduleError::InsufficientProcessors { needed, available: p });
    }

    let mut sigma = vec![2u32; n];
    // Effective (Eq. 6) expected times: running minima over the allocations
    // visited so far, so a temporarily non-improving +2 step cannot raise
    // the stored value. Kept in a lazy max-heap so each grant step costs
    // `O(log n)` instead of a linear argmax; ties break toward the lowest
    // id, matching the deterministic list ordering of the pseudocode.
    let val: Vec<f64> = (0..n).map(|i| calc.remaining(i, 2, 1.0)).collect();
    let mut list = LazyMaxHeap::new(&val);
    let mut available = p - needed;

    while available >= 2 {
        // Head of the list: the task with the longest effective time.
        let (head, head_val) = list.peek_max().expect("n ≥ 1 tasks");
        let pmax = sigma[head] + available;
        if calc.improvable_up_to(head, sigma[head], head_val, pmax, 1.0) {
            sigma[head] += 2;
            available -= 2;
            let raw = calc.remaining(head, sigma[head], 1.0);
            list.update(head, head_val.min(raw));
        } else {
            // The longest task cannot improve: keep the rest available.
            available = 0;
        }
    }
    Ok(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::units;
    use std::sync::Arc;

    fn workload(sizes: &[f64]) -> Workload {
        Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        )
    }

    fn fault_calc(sizes: &[f64], p: u32) -> TimeCalc {
        TimeCalc::new(workload(sizes), Platform::with_mtbf(p, units::years(100.0)))
    }

    #[test]
    fn rejects_small_platform() {
        let calc = fault_calc(&[2e6, 2e6], 3);
        assert_eq!(
            optimal_schedule(&calc, 3),
            Err(ScheduleError::InsufficientProcessors { needed: 4, available: 3 })
        );
    }

    #[test]
    fn minimal_platform_gives_two_each() {
        let calc = fault_calc(&[2e6, 1e6, 1.5e6], 6);
        assert_eq!(optimal_schedule(&calc, 6).unwrap(), vec![2, 2, 2]);
    }

    #[test]
    fn allocations_even_and_within_p() {
        let calc = fault_calc(&[2.5e6, 1.5e6, 2e6, 1.8e6], 64);
        let sigma = optimal_schedule(&calc, 64).unwrap();
        assert!(sigma.iter().all(|&s| s >= 2 && s % 2 == 0));
        assert!(sigma.iter().sum::<u32>() <= 64);
    }

    #[test]
    fn larger_tasks_get_more_processors() {
        let calc = fault_calc(&[2.5e6, 1.5e6], 40);
        let sigma = optimal_schedule(&calc, 40).unwrap();
        assert!(sigma[0] >= sigma[1], "bigger task should not get fewer procs: {sigma:?}");
    }

    #[test]
    fn uses_all_processors_while_improvable() {
        // At these scales every +2 improves, so the greedy exhausts p.
        let calc = fault_calc(&[2e6, 2e6], 32);
        let sigma = optimal_schedule(&calc, 32).unwrap();
        assert_eq!(sigma.iter().sum::<u32>(), 32);
    }

    #[test]
    fn balances_identical_tasks() {
        let calc = fault_calc(&[2e6, 2e6, 2e6, 2e6], 48);
        let sigma = optimal_schedule(&calc, 48).unwrap();
        let min = *sigma.iter().min().unwrap();
        let max = *sigma.iter().max().unwrap();
        assert!(max - min <= 2, "identical tasks should balance: {sigma:?}");
    }

    #[test]
    fn minimizes_makespan_vs_brute_force() {
        // Exhaustively verify optimality on a small instance.
        let sizes = [2.2e6, 1.6e6, 1.9e6];
        let p = 14u32;
        let calc = fault_calc(&sizes, p);
        let sigma = optimal_schedule(&calc, p).unwrap();
        let greedy_makespan = sigma
            .iter()
            .enumerate()
            .map(|(i, &s)| calc.remaining(i, s, 1.0))
            .fold(0.0, f64::max);

        let mut best = f64::INFINITY;
        for s0 in (2..=p - 4).step_by(2) {
            for s1 in (2..=p - s0 - 2).step_by(2) {
                for s2 in (2..=p - s0 - s1).step_by(2) {
                    let mk = calc
                        .remaining(0, s0, 1.0)
                        .max(calc.remaining(1, s1, 1.0))
                        .max(calc.remaining(2, s2, 1.0));
                    best = best.min(mk);
                }
            }
        }
        assert!(
            (greedy_makespan - best).abs() / best < 1e-9,
            "greedy {greedy_makespan} vs brute-force {best}"
        );
    }

    #[test]
    fn fault_free_mode_matches_plain_times() {
        let w = workload(&[2e6, 1e6]);
        let calc = TimeCalc::fault_free(w, Platform::new(16));
        let sigma = optimal_schedule(&calc, 16).unwrap();
        assert_eq!(sigma.iter().sum::<u32>(), 16);
        assert!(sigma[0] > sigma[1]);
    }

    #[test]
    fn deterministic() {
        let a = optimal_schedule(&fault_calc(&[2e6, 1.3e6, 1.9e6], 30), 30).unwrap();
        let b = optimal_schedule(&fault_calc(&[2e6, 1.3e6, 1.9e6], 30), 30).unwrap();
        assert_eq!(a, b);
    }
}
