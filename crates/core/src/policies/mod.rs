//! Redistribution policies (§5 of the paper).
//!
//! Two decision points exist: when a task *ends* (its processors become
//! available) and when a *failure* makes the struck task the longest one.
//! The paper evaluates two policies for each point:
//!
//! | decision point | local | global |
//! |----------------|-------|--------|
//! | task end       | [`EndLocal`] (Algorithm 3) | [`EndGreedy`] |
//! | failure        | [`ShortestTasksFirst`] (Algorithm 4) | [`IteratedGreedy`] (Algorithm 5) |
//!
//! plus the no-redistribution baselines. [`Heuristic`] enumerates the
//! combinations used in the evaluation (§6).

mod end_local;
mod greedy;
mod stf;

pub use end_local::EndLocal;
pub use greedy::{
    greedy_rebuild, greedy_rebuild_warm, EndGreedy, EndGreedyWarm, IteratedGreedy,
    IteratedGreedyWarm,
};
pub use stf::ShortestTasksFirst;

use redistrib_model::TaskId;

use crate::ctx::HeuristicCtx;

/// Policy applied when a task ends and releases processors.
///
/// `Send + Sync` are supertraits so boxed policies (and the sessions that
/// own them) can migrate across threads — the service layer pins sessions
/// to worker shards and a `Box<dyn EndPolicy>` must travel with them.
pub trait EndPolicy: std::fmt::Debug + Send + Sync {
    /// Redistributes the free processors (the ended task's processors are
    /// already back in the pool when this is called).
    fn on_task_end(&self, ctx: &mut HeuristicCtx<'_>);

    /// Whether this policy never acts — lets the engine skip building the
    /// eligible set entirely (the no-redistribution baselines).
    fn is_noop(&self) -> bool {
        false
    }
}

/// Policy applied when a failure strikes and the faulty task has become the
/// longest of the pack.
///
/// `Send + Sync` are supertraits for the same reason as [`EndPolicy`]:
/// sessions owning boxed policies must be movable across threads.
pub trait FaultPolicy: std::fmt::Debug + Send + Sync {
    /// Rebalances processors toward the faulty task `faulty`.
    ///
    /// On entry the engine has already rolled the faulty task back to its
    /// last checkpoint (`α_f` updated) and charged downtime + recovery
    /// (`tlastR_f = t + D + R`, `t^U_f = tlastR_f + remaining`).
    fn on_fault(&self, ctx: &mut HeuristicCtx<'_>, faulty: TaskId);

    /// Whether this policy never acts — lets the engine skip building the
    /// eligible set entirely (the no-redistribution baselines).
    fn is_noop(&self) -> bool {
        false
    }
}

/// End policy that never redistributes (the paper's baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEndRedistribution;

impl EndPolicy for NoEndRedistribution {
    fn on_task_end(&self, _ctx: &mut HeuristicCtx<'_>) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// Fault policy that never redistributes: the faulty task recovers in place
/// (the paper's baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaultRedistribution;

impl FaultPolicy for NoFaultRedistribution {
    fn on_fault(&self, _ctx: &mut HeuristicCtx<'_>, _faulty: TaskId) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// The heuristic combinations evaluated in §6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// No redistribution at all (normalization baseline).
    NoRedistribution,
    /// `IteratedGreedy-EndGreedy`: global rebuild at both decision points.
    IteratedGreedyEndGreedy,
    /// `IteratedGreedy-EndLocal`: global rebuild on faults, local
    /// allocation at task ends.
    IteratedGreedyEndLocal,
    /// `ShortestTasksFirst-EndGreedy`.
    ShortestTasksFirstEndGreedy,
    /// `ShortestTasksFirst-EndLocal`: local decisions only.
    ShortestTasksFirstEndLocal,
    /// Redistribute at task ends only, with local decisions (the fault-free
    /// reference configuration, "With RC (local decisions)").
    EndLocalOnly,
    /// Redistribute at task ends only, rebuilding greedily ("With RC
    /// (greedy)").
    EndGreedyOnly,
    /// Opt-in *approximate* warm combination (not a paper heuristic):
    /// [`greedy_rebuild_warm`] at both decision points — the rebuild
    /// resumes from the committed allocation instead of resetting every
    /// participant, `O(touched · log n)` per event with no fallback. The
    /// grow-only approximation of `IteratedGreedy-EndGreedy`; see
    /// `experiments warm` for the measured quality gap.
    WarmGreedy,
}

impl Heuristic {
    /// The four fault-context combinations of the paper's figures, in their
    /// legend order.
    pub const FAULT_COMBINATIONS: [Heuristic; 4] = [
        Heuristic::IteratedGreedyEndGreedy,
        Heuristic::IteratedGreedyEndLocal,
        Heuristic::ShortestTasksFirstEndGreedy,
        Heuristic::ShortestTasksFirstEndLocal,
    ];

    /// Display name matching the paper's legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::NoRedistribution => "NoRedistribution",
            Heuristic::IteratedGreedyEndGreedy => "IteratedGreedy-EndGreedy",
            Heuristic::IteratedGreedyEndLocal => "IteratedGreedy-EndLocal",
            Heuristic::ShortestTasksFirstEndGreedy => "ShortestTasksFirst-EndGreedy",
            Heuristic::ShortestTasksFirstEndLocal => "ShortestTasksFirst-EndLocal",
            Heuristic::EndLocalOnly => "EndLocal",
            Heuristic::EndGreedyOnly => "EndGreedy",
            Heuristic::WarmGreedy => "WarmGreedy",
        }
    }

    /// Instantiates the end policy of this combination.
    #[must_use]
    pub fn end_policy(self) -> Box<dyn EndPolicy> {
        match self {
            Heuristic::NoRedistribution => Box::new(NoEndRedistribution),
            Heuristic::IteratedGreedyEndGreedy
            | Heuristic::ShortestTasksFirstEndGreedy
            | Heuristic::EndGreedyOnly => Box::new(EndGreedy),
            Heuristic::IteratedGreedyEndLocal
            | Heuristic::ShortestTasksFirstEndLocal
            | Heuristic::EndLocalOnly => Box::new(EndLocal),
            Heuristic::WarmGreedy => Box::new(EndGreedyWarm),
        }
    }

    /// Instantiates the fault policy of this combination.
    #[must_use]
    pub fn fault_policy(self) -> Box<dyn FaultPolicy> {
        match self {
            Heuristic::NoRedistribution
            | Heuristic::EndLocalOnly
            | Heuristic::EndGreedyOnly => Box::new(NoFaultRedistribution),
            Heuristic::IteratedGreedyEndGreedy | Heuristic::IteratedGreedyEndLocal => {
                Box::new(IteratedGreedy)
            }
            Heuristic::ShortestTasksFirstEndGreedy | Heuristic::ShortestTasksFirstEndLocal => {
                Box::new(ShortestTasksFirst)
            }
            Heuristic::WarmGreedy => Box::new(IteratedGreedyWarm),
        }
    }

    /// The greedy-rebuild entry point this combination uses for *arrival*
    /// rebalances (the online engine's third decision point) — the
    /// rebuild-flavor counterpart of [`Heuristic::end_policy`] /
    /// [`Heuristic::fault_policy`], so warm-family combinations cannot
    /// silently fall back to the exact reset on one decision point only.
    #[must_use]
    pub fn arrival_rebuild(self) -> fn(&mut HeuristicCtx<'_>, Option<TaskId>) {
        match self {
            Heuristic::WarmGreedy => greedy_rebuild_warm,
            _ => greedy_rebuild,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Heuristic::IteratedGreedyEndGreedy.name(), "IteratedGreedy-EndGreedy");
        assert_eq!(Heuristic::ShortestTasksFirstEndLocal.name(), "ShortestTasksFirst-EndLocal");
    }

    #[test]
    fn combinations_build_policies() {
        for h in Heuristic::FAULT_COMBINATIONS {
            let _ = h.end_policy();
            let _ = h.fault_policy();
        }
        let _ = Heuristic::NoRedistribution.end_policy();
        let _ = Heuristic::EndLocalOnly.fault_policy();
    }
}
