//! Algorithm 4: `ShortestTasksFirst` — local fault-time redistribution.
//!
//! Two phases. First, the free processors (if any) are granted to the faulty
//! task as long as they strictly improve its finish time. Second, pairs are
//! *stolen* from the shortest running tasks: a transfer happens only if both
//! the faulty task's new finish time and the donor's new finish time stay
//! strictly below the faulty task's current finish time; stealing stops as
//! soon as a donor would become the new longest task.
//!
//! Pseudocode deviations (see DESIGN.md): phase 1 needs a
//! no-improvement break; phase 2 must run even when no processors are free
//! (otherwise STF could never steal, which is its entire purpose); phase-1
//! scans extend the faulty task's *current* planned allocation.

use redistrib_model::TaskId;

use crate::ctx::{HeuristicCtx, PlanEntry};

use super::FaultPolicy;

/// `ShortestTasksFirst` fault policy (Algorithm 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestTasksFirst;

impl FaultPolicy for ShortestTasksFirst {
    fn on_fault(&self, ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
        let sigma_init_f = ctx.state.sigma(faulty);
        let alpha_f = ctx.state.runtime(faulty).alpha;
        let mut sigma_f = sigma_init_f;
        let mut tu_f = ctx.state.runtime(faulty).t_u;

        // Donor planning state, in reused scratch storage.
        let mut donors = std::mem::take(&mut ctx.scratch.entries);
        donors.clear();
        donors.extend(ctx.eligible.iter().filter(|&&i| i != faulty).map(|&i| PlanEntry {
            task: i,
            sigma_init: ctx.state.sigma(i),
            sigma: ctx.state.sigma(i),
            alpha_t: 0.0,
            t_u: ctx.state.runtime(i).t_u,
            faulty: false,
        }));
        for d in &mut donors {
            d.alpha_t = ctx.alpha_current(d.task);
        }

        // Phase 1: hand free processors to the faulty task while the first
        // strictly-improving extension exists.
        let mut k = ctx.state.free_count();
        while k >= 2 {
            let mut granted = None;
            let mut q = 2;
            while q <= k {
                let te = ctx.candidate_finish(faulty, sigma_init_f, sigma_f + q, alpha_f, true);
                if te < tu_f {
                    granted = Some(q);
                    break;
                }
                q += 2;
            }
            match granted {
                Some(q) => {
                    sigma_f += q;
                    k -= q;
                    tu_f = ctx.candidate_finish(faulty, sigma_init_f, sigma_f, alpha_f, true);
                }
                None => break,
            }
        }

        // Phase 2: steal pairs from the shortest tasks.
        // The shortest donor still holding at least 4 processors.
        let shortest_donor = |donors: &[PlanEntry]| {
            donors
                .iter()
                .enumerate()
                .filter(|(_, d)| d.sigma >= 4)
                .min_by(|(_, a), (_, b)| a.t_u.partial_cmp(&b.t_u).expect("finite"))
                .map(|(x, _)| x)
        };
        while let Some(s) = shortest_donor(&donors) {
            let (donor_task, donor_init, donor_sigma, donor_alpha) = {
                let d = &donors[s];
                (d.task, d.sigma_init, d.sigma, d.alpha_t)
            };

            // Find any transfer size q whose outcome keeps both tasks
            // strictly below the faulty task's current finish time.
            let mut improvable = false;
            let mut q = 2;
            while q + 2 <= donor_sigma {
                let te_f =
                    ctx.candidate_finish(faulty, sigma_init_f, sigma_f + q, alpha_f, true);
                let te_s = ctx.candidate_finish(
                    donor_task,
                    donor_init,
                    donor_sigma - q,
                    donor_alpha,
                    false,
                );
                if te_f < tu_f && te_s < tu_f {
                    improvable = true;
                    break;
                }
                q += 2;
            }
            if !improvable {
                break;
            }

            // Transfer one pair (Algorithm 4 line 36).
            sigma_f += 2;
            tu_f = ctx.candidate_finish(faulty, sigma_init_f, sigma_f, alpha_f, true);
            let new_donor_sigma = donor_sigma - 2;
            let tu_s = ctx.candidate_finish(
                donor_task,
                donor_init,
                new_donor_sigma,
                donor_alpha,
                false,
            );
            {
                let d = &mut donors[s];
                d.sigma = new_donor_sigma;
                d.t_u = tu_s;
            }
            // Stop if the donor became the bottleneck (line 39).
            if tu_s > tu_f {
                break;
            }
        }

        // Commit: donors first, then the faulty task's own move.
        donors.push(PlanEntry {
            task: faulty,
            sigma_init: sigma_init_f,
            sigma: sigma_f,
            alpha_t: alpha_f,
            t_u: tu_f,
            faulty: true,
        });
        ctx.scratch.entries = donors;
        ctx.commit_entries();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PolicyScratch;
    use crate::state::PackState;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::trace::TraceLog;
    use redistrib_sim::units;
    use std::sync::Arc;

    /// Builds a pack where task 0 just failed (rolled back to α = 1) and is
    /// the longest task.
    fn fixture(sigmas: &[u32], p: u32) -> (TimeCalc, PackState, f64) {
        let sizes = vec![2.0e6; sigmas.len()];
        let workload = Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, sigmas);
        let t = 5000.0;
        for (i, &s) in sigmas.iter().enumerate() {
            let tu = calc.remaining(i, s, 1.0);
            state.set_t_u(i, tu);
        }
        // Fault bookkeeping for task 0 (as the engine would do).
        let j = sigmas[0];
        let d = calc.platform().downtime;
        let r = calc.recovery_time(0, j);
        let anchor = t + d + r;
        let rem = calc.remaining(0, j, 1.0);
        {
            let rt = state.runtime_mut(0);
            rt.alpha = 1.0;
            rt.t_last_r = anchor;
        }
        state.set_t_u(0, anchor + rem);
        (calc, state, t)
    }

    fn run_stf(calc: &TimeCalc, state: &mut PackState, now: f64) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = state.active_tasks().filter(|&i| i != 0).collect();
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: &eligible,
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        ShortestTasksFirst.on_fault(&mut ctx, 0);
        count
    }

    #[test]
    fn grants_free_processors_first() {
        // 4 free processors; faulty task should absorb them.
        let (calc, mut state, t) = fixture(&[4, 4], 12);
        let tu_before = state.runtime(0).t_u;
        run_stf(&calc, &mut state, t);
        assert!(state.sigma(0) > 4, "faulty task should gain");
        assert!(state.runtime(0).t_u < tu_before);
        assert!(state.check_invariants());
    }

    #[test]
    fn steals_from_shortest_when_pool_empty() {
        // No free processors: 4 + 8 on 12. The faulty task (longest, it
        // just lost all its work) steals from the other.
        let (calc, mut state, t) = fixture(&[4, 8], 12);
        let count = run_stf(&calc, &mut state, t);
        assert!(count >= 2, "a steal moves two tasks");
        assert!(state.sigma(0) > 4);
        assert!(state.sigma(1) < 8);
        assert!(state.check_invariants());
    }

    #[test]
    fn never_starves_donor_below_two() {
        let (calc, mut state, t) = fixture(&[4, 4], 8);
        run_stf(&calc, &mut state, t);
        assert!(state.sigma(1) >= 2, "donors keep at least one buddy pair");
    }

    #[test]
    fn donor_with_only_two_procs_is_untouchable() {
        let (calc, mut state, t) = fixture(&[6, 2], 8);
        let count = run_stf(&calc, &mut state, t);
        assert_eq!(count, 0, "no donor with σ ≥ 4 exists and no procs free");
        assert_eq!(state.sigma(1), 2);
    }

    #[test]
    fn donor_finish_time_stays_below_faulty() {
        let (calc, mut state, t) = fixture(&[4, 10, 10], 24);
        run_stf(&calc, &mut state, t);
        let tu_f = state.runtime(0).t_u;
        // Donors were only tapped while their new finish stayed below the
        // faulty task's *pre-transfer* finish; allow the final post-commit
        // ordering to show donors at most marginally above.
        for i in [1usize, 2] {
            assert!(
                state.runtime(i).t_u <= tu_f * 1.05,
                "donor {i} left far above the faulty task"
            );
        }
        assert!(state.check_invariants());
    }

    #[test]
    fn ineligible_tasks_are_not_donors() {
        let (calc, mut state, t) = fixture(&[4, 8], 12);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = vec![]; // task 1 mid-redistribution
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: t,
            eligible: &eligible,
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        ShortestTasksFirst.on_fault(&mut ctx, 0);
        assert_eq!(state.sigma(1), 8, "ineligible task must keep its procs");
        assert_eq!(count, 0);
    }

    #[test]
    fn deterministic() {
        let (c1, mut s1, t) = fixture(&[4, 8, 6], 20);
        let (c2, mut s2, _) = fixture(&[4, 8, 6], 20);
        run_stf(&c1, &mut s1, t);
        run_stf(&c2, &mut s2, t);
        for i in 0..3 {
            assert_eq!(s1.sigma(i), s2.sigma(i));
            assert_eq!(s1.runtime(i).t_u, s2.runtime(i).t_u);
        }
    }
}
