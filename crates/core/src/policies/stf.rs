//! Algorithm 4: `ShortestTasksFirst` — local fault-time redistribution.
//!
//! Two phases. First, the free processors (if any) are granted to the faulty
//! task as long as they strictly improve its finish time. Second, pairs are
//! *stolen* from the shortest running tasks: a transfer happens only if both
//! the faulty task's new finish time and the donor's new finish time stay
//! strictly below the faulty task's current finish time; stealing stops as
//! soon as a donor would become the new longest task.
//!
//! Pseudocode deviations (see DESIGN.md): phase 1 needs a
//! no-improvement break; phase 2 must run even when no processors are free
//! (otherwise STF could never steal, which is its entire purpose); phase-1
//! scans extend the faulty task's *current* planned allocation.
//!
//! Two implementations share the semantics:
//!
//! * [`reference_stf`] — the from-scratch path: one donor entry (and one
//!   `α^t` evaluation) per eligible task, `O(n)` per handled fault;
//! * the *incremental* path — donor queries go straight to the pack
//!   state's persistent end-event queue ("the shortest running task" is its
//!   min), and a donor only enters the session overlay (paying its `α^t`)
//!   when the steal loop actually reaches it. A fault costs
//!   `O((stolen + skipped) · log n)`, the affected set, not the pack.
//!
//! The engine selects the incremental path by passing a live eligible view;
//! explicit lists take the reference path. In debug builds every
//! incremental decision is replayed from scratch on a cloned state and the
//! outcomes are compared bit-for-bit.

use redistrib_model::TaskId;

use crate::ctx::{EligibleSet, HeuristicCtx, PlanEntry};
use crate::incremental::{pick_session_entry, IncrementalState, RC_FLOOR_SAFETY};

use super::FaultPolicy;

/// `ShortestTasksFirst` fault policy (Algorithm 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestTasksFirst;

impl FaultPolicy for ShortestTasksFirst {
    fn on_fault(&self, ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
        match ctx.eligible {
            EligibleSet::Listed(_) => reference_stf(ctx, faulty),
            EligibleSet::Live { .. } => {
                #[cfg(debug_assertions)]
                let check = crate::incremental::CrossCheck::begin(ctx);
                incremental_stf(ctx, faulty);
                #[cfg(debug_assertions)]
                check.verify(ctx, |ref_ctx| reference_stf(ref_ctx, faulty));
            }
        }
    }
}

/// Phase 1, shared by both paths: hand free processors to the faulty task
/// while the first strictly-improving extension exists. Returns the faulty
/// task's planned `(σ_f, t^U_f)`.
fn grant_free_processors(
    ctx: &mut HeuristicCtx<'_>,
    faulty: TaskId,
    sigma_init_f: u32,
    alpha_f: f64,
) -> (u32, f64) {
    let mut sigma_f = sigma_init_f;
    let mut tu_f = ctx.state.runtime(faulty).t_u;
    let mut k = ctx.state.free_count();
    while k >= 2 {
        // The successful scan evaluation is exactly the granted finish
        // time (σ_f + q), so it is computed once.
        let mut granted = None;
        let mut q = 2;
        while q <= k {
            let te = ctx.candidate_finish(faulty, sigma_init_f, sigma_f + q, alpha_f, true);
            if te < tu_f {
                granted = Some((q, te));
                break;
            }
            q += 2;
        }
        match granted {
            Some((q, te)) => {
                sigma_f += q;
                k -= q;
                tu_f = te;
            }
            None => break,
        }
    }
    (sigma_f, tu_f)
}

/// One phase-2 round against the current shortest donor, shared by both
/// paths: scans transfer sizes q for one keeping both the faulty task's
/// and the donor's new finish times strictly below `t^U_f`; on success
/// transfers one pair (Algorithm 4 line 36), updating the donor's plan and
/// the faulty task's planned `(σ_f, t^U_f)`. Returns whether the steal
/// loop continues — `false` when no transfer improves or the donor became
/// the bottleneck (line 39). The q = 2 evaluations double as the
/// post-transfer finish times (the transfer is always one pair).
fn try_steal_pair(
    ctx: &mut HeuristicCtx<'_>,
    faulty: TaskId,
    sigma_init_f: u32,
    alpha_f: f64,
    sigma_f: &mut u32,
    tu_f: &mut f64,
    donor: &mut PlanEntry,
) -> bool {
    let mut improvable = false;
    let mut q = 2;
    let mut te2 = (f64::INFINITY, f64::INFINITY);
    while q + 2 <= donor.sigma {
        let te_f = ctx.candidate_finish(faulty, sigma_init_f, *sigma_f + q, alpha_f, true);
        let te_s = ctx.candidate_finish(
            donor.task,
            donor.sigma_init,
            donor.sigma - q,
            donor.alpha_t,
            false,
        );
        if q == 2 {
            te2 = (te_f, te_s);
        }
        if te_f < *tu_f && te_s < *tu_f {
            improvable = true;
            break;
        }
        q += 2;
    }
    if !improvable {
        return false;
    }
    *sigma_f += 2;
    *tu_f = te2.0;
    donor.sigma -= 2;
    donor.t_u = te2.1;
    donor.t_u <= *tu_f
}

/// From-scratch `ShortestTasksFirst` (the reference semantics).
pub fn reference_stf(ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
    let sigma_init_f = ctx.state.sigma(faulty);
    let alpha_f = ctx.state.runtime(faulty).alpha;

    // Donor planning state, in reused scratch storage.
    let mut donors = std::mem::take(&mut ctx.scratch.entries);
    donors.clear();
    ctx.for_each_eligible(|i| {
        if i != faulty {
            donors.push(PlanEntry {
                task: i,
                sigma_init: ctx.state.sigma(i),
                sigma: ctx.state.sigma(i),
                alpha_t: 0.0,
                t_u: ctx.state.runtime(i).t_u,
                faulty: false,
            });
        }
    });
    for d in &mut donors {
        d.alpha_t = ctx.alpha_current(d.task);
    }

    // Phase 1: free processors toward the faulty task.
    let (mut sigma_f, mut tu_f) = grant_free_processors(ctx, faulty, sigma_init_f, alpha_f);

    // Phase 2: steal pairs from the shortest tasks.
    // The shortest donor still holding at least 4 processors.
    let shortest_donor = |donors: &[PlanEntry]| {
        donors
            .iter()
            .enumerate()
            .filter(|(_, d)| d.sigma >= 4)
            .min_by(|(_, a), (_, b)| a.t_u.partial_cmp(&b.t_u).expect("finite"))
            .map(|(x, _)| x)
    };
    while let Some(s) = shortest_donor(&donors) {
        let mut donor = donors[s];
        let go = try_steal_pair(
            ctx,
            faulty,
            sigma_init_f,
            alpha_f,
            &mut sigma_f,
            &mut tu_f,
            &mut donor,
        );
        donors[s] = donor;
        if !go {
            break;
        }
    }

    // Commit: donors first, then the faulty task's own move.
    donors.push(PlanEntry {
        task: faulty,
        sigma_init: sigma_init_f,
        sigma: sigma_f,
        alpha_t: alpha_f,
        t_u: tu_f,
        faulty: true,
    });
    ctx.scratch.entries = donors;
    ctx.commit_entries();
}

/// Incremental `ShortestTasksFirst`: identical decisions, with donors
/// discovered lazily through the persistent end-event queue.
fn incremental_stf(ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
    let sigma_init_f = ctx.state.sigma(faulty);
    let alpha_f = ctx.state.runtime(faulty).alpha;
    let now = ctx.now;
    let EligibleSet::Live { skip, min_t_u } = ctx.eligible else {
        unreachable!("incremental path requires a live eligible view")
    };
    debug_assert_eq!(skip, Some(faulty), "fault decisions must skip the faulty task");

    // Phase 1: free processors toward the faulty task (no donors needed).
    let (mut sigma_f, mut tu_f) = grant_free_processors(ctx, faulty, sigma_init_f, alpha_f);

    // Redistribution-cost floor for donors (see `RC_FLOOR_SAFETY`): a
    // steal needs the donor's shrunk finish time `now + RC + … ≥ now +
    // m_s/σ_s` to stay *strictly below* `t^U_f`, so when `t^U_f − now`
    // is at or below the workload-wide floor `m_min/σ_hi` no donor can
    // ever qualify — skip the donor session outright (the common case
    // once the pack is past its redistribution-pays-off phase).
    let m_min = ctx.calc.min_task_size();
    let sigma_hi = f64::from(ctx.state.sigma_high_water());
    let donors_hopeless = |tu_f: f64| tu_f - ctx.now <= RC_FLOOR_SAFETY * m_min / sigma_hi;
    if donors_hopeless(tu_f) {
        let mut entries = std::mem::take(&mut ctx.scratch.entries);
        entries.clear();
        entries.push(PlanEntry {
            task: faulty,
            sigma_init: sigma_init_f,
            sigma: sigma_f,
            alpha_t: alpha_f,
            t_u: tu_f,
            faulty: true,
        });
        ctx.scratch.entries = entries;
        ctx.commit_entries();
        return;
    }

    // Phase 2: steal pairs from the shortest tasks, pulling donors off the
    // persistent end-event queue ("shortest running" = queue minimum) and
    // adopting them into the session overlay only when the steal loop
    // reaches them.
    let mut overlay = std::mem::take(&mut ctx.scratch.overlay);
    overlay.begin_session(ctx.state.num_tasks());
    let mut stash = std::mem::take(&mut overlay.stash);
    let mut ends = ctx.state.take_end_queue();

    loop {
        let heap_donor = {
            let state = &*ctx.state;
            ends.peek_where(&mut stash, |i| {
                let rt = state.runtime(i);
                i != faulty
                    && !overlay.is_touched(i)
                    && rt.t_last_r <= now
                    && rt.t_u >= min_t_u
                    && state.sigma(i) >= 4
            })
        };
        let over_best = overlay.best_min_donor();
        let picked = pick_session_entry(
            heap_donor,
            over_best,
            |a, b| a < b,
            |i, v| {
                ends.take_top(&mut stash);
                let sigma_init = ctx.state.sigma(i);
                let alpha_t = ctx.alpha_current(i);
                overlay.adopt(PlanEntry {
                    task: i,
                    sigma_init,
                    sigma: sigma_init,
                    alpha_t,
                    t_u: v,
                    faulty: false,
                })
            },
        );
        let Some(slot) = picked else {
            break;
        };

        let (donor_task, donor_init) = {
            let d = &overlay.entry(slot).plan;
            (d.task, d.sigma_init)
        };

        // Donor floor: its shrunk finish time is ≥ now + m_s/σ_init, so if
        // that already reaches t^U_f the scan below cannot succeed.
        if tu_f - now
            <= RC_FLOOR_SAFETY * ctx.calc.task_size(donor_task) / f64::from(donor_init)
        {
            break;
        }

        let mut donor = overlay.entry(slot).plan;
        let go = try_steal_pair(
            ctx,
            faulty,
            sigma_init_f,
            alpha_f,
            &mut sigma_f,
            &mut tu_f,
            &mut donor,
        );
        overlay.entry_mut(slot).plan = donor;
        if !go {
            break;
        }
    }

    // Session end: restore the queue, then commit donors (ascending id)
    // followed by the faulty task's own move — the reference commit order.
    ends.restore(&mut stash);
    ctx.state.put_end_queue(ends);
    overlay.stash = stash;
    let mut entries = std::mem::take(&mut ctx.scratch.entries);
    overlay.drain_plans_sorted(&mut entries);
    entries.push(PlanEntry {
        task: faulty,
        sigma_init: sigma_init_f,
        sigma: sigma_f,
        alpha_t: alpha_f,
        t_u: tu_f,
        faulty: true,
    });
    ctx.scratch.entries = entries;
    ctx.scratch.overlay = overlay;
    ctx.commit_entries();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PolicyScratch;
    use crate::state::PackState;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::trace::TraceLog;
    use redistrib_sim::units;
    use std::sync::Arc;

    /// Builds a pack where task 0 just failed (rolled back to α = 1) and is
    /// the longest task.
    fn fixture(sigmas: &[u32], p: u32) -> (TimeCalc, PackState, f64) {
        // Distinct sizes: exact finish-time ties between donors would be
        // broken differently by `min_by` scans of different list layouts.
        let sizes: Vec<f64> = (0..sigmas.len()).map(|i| 2.0e6 + 1.0e4 * i as f64).collect();
        let workload = Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, sigmas);
        let t = 5000.0;
        for (i, &s) in sigmas.iter().enumerate() {
            let tu = calc.remaining(i, s, 1.0);
            state.set_t_u(i, tu);
        }
        // Fault bookkeeping for task 0 (as the engine would do).
        let j = sigmas[0];
        let d = calc.platform().downtime;
        let r = calc.recovery_time(0, j);
        let anchor = t + d + r;
        let rem = calc.remaining(0, j, 1.0);
        {
            let rt = state.runtime_mut(0);
            rt.alpha = 1.0;
            rt.t_last_r = anchor;
        }
        state.set_t_u(0, anchor + rem);
        (calc, state, t)
    }

    fn run_stf(calc: &TimeCalc, state: &mut PackState, now: f64) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = state.active_tasks().filter(|&i| i != 0).collect();
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        ShortestTasksFirst.on_fault(&mut ctx, 0);
        count
    }

    /// Runs the incremental (live-view) path, with its built-in debug
    /// cross-check against the reference active.
    fn run_stf_live(calc: &TimeCalc, state: &mut PackState, now: f64) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: EligibleSet::live_fault(0, f64::NEG_INFINITY),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        ShortestTasksFirst.on_fault(&mut ctx, 0);
        count
    }

    #[test]
    fn grants_free_processors_first() {
        // 4 free processors; faulty task should absorb them.
        let (calc, mut state, t) = fixture(&[4, 4], 12);
        let tu_before = state.runtime(0).t_u;
        run_stf(&calc, &mut state, t);
        assert!(state.sigma(0) > 4, "faulty task should gain");
        assert!(state.runtime(0).t_u < tu_before);
        assert!(state.check_invariants());
    }

    #[test]
    fn steals_from_shortest_when_pool_empty() {
        // No free processors: 4 + 8 on 12. The faulty task (longest, it
        // just lost all its work) steals from the other.
        let (calc, mut state, t) = fixture(&[4, 8], 12);
        let count = run_stf(&calc, &mut state, t);
        assert!(count >= 2, "a steal moves two tasks");
        assert!(state.sigma(0) > 4);
        assert!(state.sigma(1) < 8);
        assert!(state.check_invariants());
    }

    #[test]
    fn never_starves_donor_below_two() {
        let (calc, mut state, t) = fixture(&[4, 4], 8);
        run_stf(&calc, &mut state, t);
        assert!(state.sigma(1) >= 2, "donors keep at least one buddy pair");
    }

    #[test]
    fn donor_with_only_two_procs_is_untouchable() {
        let (calc, mut state, t) = fixture(&[6, 2], 8);
        let count = run_stf(&calc, &mut state, t);
        assert_eq!(count, 0, "no donor with σ ≥ 4 exists and no procs free");
        assert_eq!(state.sigma(1), 2);
    }

    #[test]
    fn donor_finish_time_stays_below_faulty() {
        let (calc, mut state, t) = fixture(&[4, 10, 10], 24);
        run_stf(&calc, &mut state, t);
        let tu_f = state.runtime(0).t_u;
        // Donors were only tapped while their new finish stayed below the
        // faulty task's *pre-transfer* finish; allow the final post-commit
        // ordering to show donors at most marginally above.
        for i in [1usize, 2] {
            assert!(
                state.runtime(i).t_u <= tu_f * 1.05,
                "donor {i} left far above the faulty task"
            );
        }
        assert!(state.check_invariants());
    }

    #[test]
    fn ineligible_tasks_are_not_donors() {
        let (calc, mut state, t) = fixture(&[4, 8], 12);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = vec![]; // task 1 mid-redistribution
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: t,
            eligible: EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        ShortestTasksFirst.on_fault(&mut ctx, 0);
        assert_eq!(state.sigma(1), 8, "ineligible task must keep its procs");
        assert_eq!(count, 0);
    }

    #[test]
    fn deterministic() {
        let (c1, mut s1, t) = fixture(&[4, 8, 6], 20);
        let (c2, mut s2, _) = fixture(&[4, 8, 6], 20);
        run_stf(&c1, &mut s1, t);
        run_stf(&c2, &mut s2, t);
        for i in 0..3 {
            assert_eq!(s1.sigma(i), s2.sigma(i));
            assert_eq!(s1.runtime(i).t_u, s2.runtime(i).t_u);
        }
    }

    #[test]
    fn incremental_matches_reference() {
        for sigmas in [&[4u32, 8][..], &[4, 8, 6], &[4, 10, 10], &[6, 2]] {
            let p: u32 = sigmas.iter().sum::<u32>() + 4;
            let (calc, mut a, t) = fixture(sigmas, p);
            let (_, mut b, _) = fixture(sigmas, p);
            let ca = run_stf(&calc, &mut a, t);
            let cb = run_stf_live(&calc, &mut b, t);
            assert_eq!(ca, cb, "sigmas={sigmas:?}");
            assert!(a.assignment_eq(&b), "sigmas={sigmas:?}");
        }
    }
}
