//! Algorithm 3: `EndLocal` — local redistribution of released processors.
//!
//! When a task ends, repeatedly consider the (eligible) task with the
//! longest expected finish time: if giving it some of the free processors
//! would strictly improve its finish time — redistribution cost and the
//! post-redistribution checkpoint included — grant it two processors and
//! reconsider; a task that cannot improve drops out of consideration. (The
//! pseudocode's outer loop lacks an emptiness guard on the candidate list;
//! we add it, see DESIGN.md.)

use crate::ctx::{HeuristicCtx, PlanEntry};

use super::EndPolicy;

/// `EndLocal` policy (Algorithm 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndLocal;

impl EndPolicy for EndLocal {
    fn on_task_end(&self, ctx: &mut HeuristicCtx<'_>) {
        let mut k = ctx.state.free_count();
        if k < 2 || ctx.eligible.is_empty() {
            return;
        }

        // Per-candidate planning state, in reused scratch storage.
        let mut entries = std::mem::take(&mut ctx.scratch.entries);
        entries.clear();
        entries.extend(ctx.eligible.iter().map(|&i| PlanEntry {
            task: i,
            sigma_init: ctx.state.sigma(i),
            sigma: ctx.state.sigma(i),
            alpha_t: 0.0, // filled below (needs &mut ctx)
            t_u: ctx.state.runtime(i).t_u,
            faulty: false,
        }));
        for e in &mut entries {
            e.alpha_t = ctx.alpha_current(e.task);
        }

        // Working list ordered by planned finish time (lazy max-heap; a
        // dropped task leaves the list for good).
        let mut values = std::mem::take(&mut ctx.scratch.values);
        values.clear();
        values.extend(entries.iter().map(|e| e.t_u));
        let mut list = std::mem::take(&mut ctx.scratch.heap);
        list.reset(&values);

        while k >= 2 {
            // Head of L: longest planned finish time.
            let Some((head, t_u)) = list.peek_max() else {
                break;
            };
            let (task, sigma_init, sigma, alpha_t) = {
                let e = &entries[head];
                (e.task, e.sigma_init, e.sigma, e.alpha_t)
            };

            // First strictly improving extension σ(i)+q, q = 2, 4, …, k.
            let mut improvable = false;
            let mut q = 2;
            while q <= k {
                let te = ctx.candidate_finish(task, sigma_init, sigma + q, alpha_t, false);
                if te < t_u {
                    improvable = true;
                    break;
                }
                q += 2;
            }

            if improvable {
                entries[head].sigma += 2;
                k -= 2;
                let new_tu = ctx.candidate_finish(task, sigma_init, sigma + 2, alpha_t, false);
                entries[head].t_u = new_tu;
                list.update(head, new_tu);
            } else {
                list.remove(head);
            }
        }

        ctx.scratch.values = values;
        ctx.scratch.heap = list;
        ctx.scratch.entries = entries;
        ctx.commit_entries();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PolicyScratch;
    use crate::state::PackState;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::trace::TraceLog;
    use redistrib_sim::units;
    use std::sync::Arc;

    /// Two running tasks on 4 procs each, 4 free (as if a third task ended).
    fn fixture(p: u32) -> (TimeCalc, PackState) {
        let workload = Workload::new(
            vec![TaskSpec::new(2.2e6), TaskSpec::new(1.6e6)],
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, &[4, 4]);
        for i in 0..2 {
            let tu = calc.remaining(i, 4, 1.0);
            state.set_t_u(i, tu);
        }
        (calc, state)
    }

    fn run_policy(calc: &TimeCalc, state: &mut PackState, now: f64) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = state.active_tasks().collect();
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: &eligible,
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        EndLocal.on_task_end(&mut ctx);
        count
    }

    #[test]
    fn distributes_free_processors() {
        let (calc, mut state) = fixture(12);
        let tu_before_0 = state.runtime(0).t_u;
        let count = run_policy(&calc, &mut state, 1000.0);
        assert!(count > 0, "free processors should be granted");
        assert_eq!(state.free_count(), 0, "both tasks improvable at this scale");
        assert!(state.runtime(0).t_u < tu_before_0, "longest task improves");
        assert!(state.check_invariants());
    }

    #[test]
    fn longest_task_served_first() {
        let (calc, mut state) = fixture(10); // one free pair only
        let count = run_policy(&calc, &mut state, 1000.0);
        assert_eq!(count, 1);
        // Task 0 is bigger, hence the longest; it should get the pair.
        assert_eq!(state.sigma(0), 6);
        assert_eq!(state.sigma(1), 4);
    }

    #[test]
    fn no_free_processors_is_noop() {
        let (calc, mut state) = fixture(8);
        let count = run_policy(&calc, &mut state, 1000.0);
        assert_eq!(count, 0);
        assert_eq!(state.sigma(0), 4);
        assert_eq!(state.sigma(1), 4);
    }

    #[test]
    fn never_shrinks_tasks() {
        let (calc, mut state) = fixture(16);
        run_policy(&calc, &mut state, 1000.0);
        assert!(state.sigma(0) >= 4);
        assert!(state.sigma(1) >= 4);
    }

    #[test]
    fn anchors_move_for_changed_tasks_only() {
        let (calc, mut state) = fixture(10);
        run_policy(&calc, &mut state, 1000.0);
        // Task 0 changed: anchor after now. Task 1 unchanged: anchor still 0.
        assert!(state.runtime(0).t_last_r > 1000.0);
        assert_eq!(state.runtime(1).t_last_r, 0.0);
    }

    #[test]
    fn respects_eligibility() {
        let (calc, mut state) = fixture(12);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        // Only task 1 is eligible; task 0 must not change.
        let eligible = vec![1usize];
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 1000.0,
            eligible: &eligible,
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        EndLocal.on_task_end(&mut ctx);
        assert_eq!(state.sigma(0), 4);
        assert!(state.sigma(1) > 4);
    }

    #[test]
    fn improvement_is_strict_with_costs() {
        // With an enormous data size, the redistribution cost dominates any
        // gain, so EndLocal must decline.
        let workload = Workload::new(
            vec![TaskSpec::with_ckpt_unit(3.0e6, 1e-9)],
            // Almost sequential: extra processors barely help.
            Arc::new(PaperModel::new(0.99)),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(8, units::years(100.0)));
        let mut state = PackState::new(8, &[2]);
        let tu = calc.remaining(0, 2, 1.0);
        state.runtime_mut(0).t_u = tu;
        // Nearly finished: the residual gain cannot repay the data movement.
        let count = run_policy(&calc, &mut state, tu * 0.999);
        assert_eq!(count, 0, "non-beneficial redistribution must be declined");
        assert_eq!(state.sigma(0), 2);
    }
}
