//! Algorithm 3: `EndLocal` — local redistribution of released processors.
//!
//! When a task ends, repeatedly consider the (eligible) task with the
//! longest expected finish time: if giving it some of the free processors
//! would strictly improve its finish time — redistribution cost and the
//! post-redistribution checkpoint included — grant it two processors and
//! reconsider; a task that cannot improve drops out of consideration. (The
//! pseudocode's outer loop lacks an emptiness guard on the candidate list;
//! we add it, see DESIGN.md.)
//!
//! Two implementations share the semantics:
//!
//! * [`reference_end_local`] — the from-scratch path: one planning entry
//!   (and one `α^t` evaluation) per eligible task, `O(n)` per event;
//! * the *incremental* path — head queries go straight to the pack state's
//!   persistent latest-finish queue, and a task is only adopted into the
//!   session overlay (paying its `α^t`) when it actually becomes the head.
//!   A task end therefore costs `O((moved + skipped) · log n)` where
//!   `skipped` counts tasks still inside redistribution windows — the
//!   affected set, not the pack.
//!
//! The engine selects the incremental path by passing a live eligible view;
//! explicit lists take the reference path. In debug builds every
//! incremental decision is replayed from scratch on a cloned state and the
//! outcomes are compared bit-for-bit.

use crate::ctx::{EligibleSet, HeuristicCtx, PlanEntry};
use crate::incremental::{pick_session_entry, IncrementalState, RC_FLOOR_SAFETY};

use super::EndPolicy;

/// `EndLocal` policy (Algorithm 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndLocal;

impl EndPolicy for EndLocal {
    fn on_task_end(&self, ctx: &mut HeuristicCtx<'_>) {
        match ctx.eligible {
            EligibleSet::Listed(_) => reference_end_local(ctx),
            EligibleSet::Live { .. } => {
                #[cfg(debug_assertions)]
                let check = crate::incremental::CrossCheck::begin(ctx);
                incremental_end_local(ctx);
                #[cfg(debug_assertions)]
                check.verify(ctx, reference_end_local);
            }
        }
    }
}

/// From-scratch `EndLocal` (the reference semantics): materializes one
/// planning entry per eligible task, then runs the grant loop over a
/// planning heap seeded with every entry.
pub fn reference_end_local(ctx: &mut HeuristicCtx<'_>) {
    let mut k = ctx.state.free_count();
    if k < 2 {
        return;
    }

    // Per-candidate planning state, in reused scratch storage.
    let mut entries = std::mem::take(&mut ctx.scratch.entries);
    entries.clear();
    ctx.for_each_eligible(|i| {
        entries.push(PlanEntry {
            task: i,
            sigma_init: ctx.state.sigma(i),
            sigma: ctx.state.sigma(i),
            alpha_t: 0.0, // filled below (needs &mut ctx)
            t_u: ctx.state.runtime(i).t_u,
            faulty: false,
        });
    });
    if entries.is_empty() {
        ctx.scratch.entries = entries;
        return;
    }
    for e in &mut entries {
        e.alpha_t = ctx.alpha_current(e.task);
    }

    // Working list ordered by planned finish time (lazy max-heap; a
    // dropped task leaves the list for good).
    let mut values = std::mem::take(&mut ctx.scratch.values);
    values.clear();
    values.extend(entries.iter().map(|e| e.t_u));
    let mut list = std::mem::take(&mut ctx.scratch.heap);
    list.reset(&values);

    while k >= 2 {
        // Head of L: longest planned finish time.
        let Some((head, t_u)) = list.peek_max() else {
            break;
        };
        let (task, sigma_init, sigma, alpha_t) = {
            let e = &entries[head];
            (e.task, e.sigma_init, e.sigma, e.alpha_t)
        };

        // First strictly improving extension σ(i)+q, q = 2, 4, …, k.
        // The q = 2 evaluation doubles as the post-grant finish time (the
        // grant is always +2), so it is computed exactly once.
        let mut improvable = false;
        let mut q = 2;
        let mut te2 = f64::INFINITY;
        while q <= k {
            let te = ctx.candidate_finish(task, sigma_init, sigma + q, alpha_t, false);
            if q == 2 {
                te2 = te;
            }
            if te < t_u {
                improvable = true;
                break;
            }
            q += 2;
        }

        if improvable {
            entries[head].sigma += 2;
            k -= 2;
            entries[head].t_u = te2;
            list.update(head, te2);
        } else {
            list.remove(head);
        }
    }

    ctx.scratch.values = values;
    ctx.scratch.heap = list;
    ctx.scratch.entries = entries;
    ctx.commit_entries();
}

/// Incremental `EndLocal`: identical decisions, derived from the persistent
/// latest-finish queue plus a session overlay of the tasks actually
/// considered.
fn incremental_end_local(ctx: &mut HeuristicCtx<'_>) {
    let mut k = ctx.state.free_count();
    if k < 2 {
        return;
    }
    let now = ctx.now;
    let EligibleSet::Live { skip, min_t_u } = ctx.eligible else {
        unreachable!("incremental path requires a live eligible view")
    };
    let mut overlay = std::mem::take(&mut ctx.scratch.overlay);
    overlay.begin_session(ctx.state.num_tasks());
    let mut stash = std::mem::take(&mut overlay.stash);
    let mut tails = ctx.state.take_latest_queue();
    // Redistribution-cost floors (see `RC_FLOOR_SAFETY`): a fresh head
    // whose remaining time `t^U − now` is at or below `m/(σ+k)` provably
    // cannot improve, and because heads arrive in decreasing `t^U`, the
    // *global* floor `m_min/(σ_hi+k)` retires the whole untouched side at
    // once — the step that turns "nobody can improve" events from Θ(n)
    // scans into O(1).
    let m_min = ctx.calc.min_task_size();
    let sigma_hi = f64::from(ctx.state.sigma_high_water());
    let mut heap_open = true;

    while k >= 2 {
        // Head of L: the untouched eligible task with the longest committed
        // finish time (straight off the persistent queue) versus the best
        // session entry; ties toward the lowest task id, exactly like the
        // reference planning heap over the ascending-id eligible list.
        let mut heap_best = None;
        while heap_open {
            let picked = {
                let state = &*ctx.state;
                tails.peek_where(&mut stash, |i| {
                    let rt = state.runtime(i);
                    Some(i) != skip
                        && !overlay.is_touched(i)
                        && rt.t_last_r <= now
                        && rt.t_u >= min_t_u
                })
            };
            let Some((i, v)) = picked else {
                heap_open = false;
                break;
            };
            if v - now <= RC_FLOOR_SAFETY * m_min / (sigma_hi + f64::from(k)) {
                // Every untouched head from here down is unimprovable.
                heap_open = false;
                break;
            }
            let sigma_init = ctx.state.sigma(i);
            if v - now <= RC_FLOOR_SAFETY * ctx.calc.task_size(i) / f64::from(sigma_init + k) {
                // This head is unimprovable: drop it without paying α^t.
                tails.take_top(&mut stash);
                let slot = overlay.adopt(PlanEntry {
                    task: i,
                    sigma_init,
                    sigma: sigma_init,
                    alpha_t: 0.0, // never read: the entry is dropped
                    t_u: v,
                    faulty: false,
                });
                overlay.entry_mut(slot).dropped = true;
                continue;
            }
            heap_best = Some((i, v));
            break;
        }
        let over_best = overlay.best_max();
        let picked = pick_session_entry(
            heap_best,
            over_best,
            |a, b| a > b,
            |i, v| {
                // Adopt the head into the session: pop its live queue entry
                // (the overlay owns the task from here) and pay its α^t
                // evaluation — the lazy step that makes cheap events cheap.
                tails.take_top(&mut stash);
                let sigma_init = ctx.state.sigma(i);
                let alpha_t = ctx.alpha_current(i);
                overlay.adopt(PlanEntry {
                    task: i,
                    sigma_init,
                    sigma: sigma_init,
                    alpha_t,
                    t_u: v,
                    faulty: false,
                })
            },
        );
        let Some(slot) = picked else {
            break;
        };

        let (task, sigma_init, sigma, alpha_t, t_u) = {
            let e = &overlay.entry(slot).plan;
            (e.task, e.sigma_init, e.sigma, e.alpha_t, e.t_u)
        };

        // First strictly improving extension σ(i)+q, q = 2, 4, …, k — with
        // the q = 2 evaluation doubling as the post-grant finish time. For
        // an unmoved head (σ == σ_init), extensions q ≥ σ cost at least
        // m/(2σ) in redistribution alone, so when the head's remaining
        // time is below that floor the scan is exactly the range q < σ
        // (see `RC_FLOOR_SAFETY`) — the step that keeps drop decisions
        // O(σ) instead of O(k) as the free pool grows.
        let mut q_cap = k;
        if sigma == sigma_init && sigma >= 2 {
            let shrink_floor =
                RC_FLOOR_SAFETY * ctx.calc.task_size(task) / f64::from(2 * sigma);
            if t_u - now <= shrink_floor {
                q_cap = k.min(sigma.saturating_sub(1));
            }
        }
        let mut improvable = false;
        let mut q = 2;
        let mut te2 = f64::INFINITY;
        while q <= q_cap {
            let te = ctx.candidate_finish(task, sigma_init, sigma + q, alpha_t, false);
            if q == 2 {
                te2 = te;
            }
            if te < t_u {
                improvable = true;
                break;
            }
            q += 2;
        }

        if improvable {
            let e = &mut overlay.entry_mut(slot).plan;
            e.sigma += 2;
            e.t_u = te2;
            k -= 2;
        } else {
            overlay.entry_mut(slot).dropped = true;
        }
    }

    // Session end: the queue gets its skipped entries back, the state gets
    // its queue back, and the commit (ascending task id, the reference
    // order) rewrites the values of the tasks that actually moved.
    tails.restore(&mut stash);
    ctx.state.put_latest_queue(tails);
    overlay.stash = stash;
    let mut entries = std::mem::take(&mut ctx.scratch.entries);
    overlay.drain_plans_sorted(&mut entries);
    ctx.scratch.entries = entries;
    ctx.scratch.overlay = overlay;
    ctx.commit_entries();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PolicyScratch;
    use crate::state::PackState;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::trace::TraceLog;
    use redistrib_sim::units;
    use std::sync::Arc;

    /// Two running tasks on 4 procs each, 4 free (as if a third task ended).
    fn fixture(p: u32) -> (TimeCalc, PackState) {
        let workload = Workload::new(
            vec![TaskSpec::new(2.2e6), TaskSpec::new(1.6e6)],
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, &[4, 4]);
        for i in 0..2 {
            let tu = calc.remaining(i, 4, 1.0);
            state.set_t_u(i, tu);
        }
        (calc, state)
    }

    fn run_policy(calc: &TimeCalc, state: &mut PackState, now: f64) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = state.active_tasks().collect();
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        EndLocal.on_task_end(&mut ctx);
        count
    }

    /// Runs the incremental (live-view) path, with its built-in debug
    /// cross-check against the reference active.
    fn run_policy_live(calc: &TimeCalc, state: &mut PackState, now: f64) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: EligibleSet::live(),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        EndLocal.on_task_end(&mut ctx);
        count
    }

    #[test]
    fn distributes_free_processors() {
        let (calc, mut state) = fixture(12);
        let tu_before_0 = state.runtime(0).t_u;
        let count = run_policy(&calc, &mut state, 1000.0);
        assert!(count > 0, "free processors should be granted");
        assert_eq!(state.free_count(), 0, "both tasks improvable at this scale");
        assert!(state.runtime(0).t_u < tu_before_0, "longest task improves");
        assert!(state.check_invariants());
    }

    #[test]
    fn longest_task_served_first() {
        let (calc, mut state) = fixture(10); // one free pair only
        let count = run_policy(&calc, &mut state, 1000.0);
        assert_eq!(count, 1);
        // Task 0 is bigger, hence the longest; it should get the pair.
        assert_eq!(state.sigma(0), 6);
        assert_eq!(state.sigma(1), 4);
    }

    #[test]
    fn no_free_processors_is_noop() {
        let (calc, mut state) = fixture(8);
        let count = run_policy(&calc, &mut state, 1000.0);
        assert_eq!(count, 0);
        assert_eq!(state.sigma(0), 4);
        assert_eq!(state.sigma(1), 4);
    }

    #[test]
    fn never_shrinks_tasks() {
        let (calc, mut state) = fixture(16);
        run_policy(&calc, &mut state, 1000.0);
        assert!(state.sigma(0) >= 4);
        assert!(state.sigma(1) >= 4);
    }

    #[test]
    fn anchors_move_for_changed_tasks_only() {
        let (calc, mut state) = fixture(10);
        run_policy(&calc, &mut state, 1000.0);
        // Task 0 changed: anchor after now. Task 1 unchanged: anchor still 0.
        assert!(state.runtime(0).t_last_r > 1000.0);
        assert_eq!(state.runtime(1).t_last_r, 0.0);
    }

    #[test]
    fn respects_eligibility() {
        let (calc, mut state) = fixture(12);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        // Only task 1 is eligible; task 0 must not change.
        let eligible = vec![1usize];
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 1000.0,
            eligible: EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        EndLocal.on_task_end(&mut ctx);
        assert_eq!(state.sigma(0), 4);
        assert!(state.sigma(1) > 4);
    }

    #[test]
    fn improvement_is_strict_with_costs() {
        // With an enormous data size, the redistribution cost dominates any
        // gain, so EndLocal must decline.
        let workload = Workload::new(
            vec![TaskSpec::with_ckpt_unit(3.0e6, 1e-9)],
            // Almost sequential: extra processors barely help.
            Arc::new(PaperModel::new(0.99)),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(8, units::years(100.0)));
        let mut state = PackState::new(8, &[2]);
        let tu = calc.remaining(0, 2, 1.0);
        state.set_t_u(0, tu);
        // Nearly finished: the residual gain cannot repay the data movement.
        let count = run_policy(&calc, &mut state, tu * 0.999);
        assert_eq!(count, 0, "non-beneficial redistribution must be declined");
        assert_eq!(state.sigma(0), 2);
    }

    #[test]
    fn incremental_matches_reference() {
        // Same fixture through both paths (the live path additionally
        // replays its own cross-check in debug builds).
        for p in [10u32, 12, 16, 24] {
            let (calc, mut a) = fixture(p);
            let (_, mut b) = fixture(p);
            let ca = run_policy(&calc, &mut a, 1000.0);
            let cb = run_policy_live(&calc, &mut b, 1000.0);
            assert_eq!(ca, cb, "p={p}");
            assert!(a.assignment_eq(&b), "p={p}");
        }
    }

    #[test]
    fn incremental_skips_windowed_tasks() {
        // A task inside a redistribution window (anchor in the future) is
        // not eligible; the live view must leave it untouched.
        let (calc, mut state) = fixture(12);
        state.runtime_mut(0).t_last_r = 2000.0; // window beyond `now`
        run_policy_live(&calc, &mut state, 1000.0);
        assert_eq!(state.sigma(0), 4, "windowed task must be skipped");
        assert!(state.sigma(1) > 4, "eligible task still absorbs the pool");
        assert!(state.check_invariants());
    }
}
