//! Algorithm 5 (`IteratedGreedy`) and its task-end variant (`EndGreedy`).
//!
//! Both rebuild a complete schedule, like Algorithm 1, but accounting for
//! the cost of moving each task away from its current allocation: every
//! participating task is virtually reset to two processors, then the task
//! with the longest planned finish time greedily receives pairs while it
//! can strictly improve. A candidate equal to the task's *current*
//! allocation is free (the task simply continues); any other candidate pays
//! `RC^{σ_init→k}` plus the post-redistribution checkpoint — and, for the
//! faulty task, downtime and recovery (§3.3.2 text; the literal pseudocode
//! omits the latter, see `pseudocode_fault_bias`).
//!
//! # Warm-start: resuming Algorithm 5 from the committed allocation
//!
//! The two-processor reset makes the from-scratch rebuild
//! `Θ(Σσ_i)`: every participant pays an `α^t` evaluation plus the
//! candidate evaluations of its walk from 2 back to (at least) its
//! committed allocation. Successive events perturb only a few tasks, so
//! the *warm* path resumes the improvement loop directly from the
//! committed allocation — which is exactly the previous rebuild's output —
//! with heads pulled lazily off the pack state's persistent latest-finish
//! queue and adopted into a PR 3 session overlay. Tasks never adopted pay
//! nothing: no planning entry, no `α^t`, no candidate evaluation.
//!
//! Equivalence is *certified*, not assumed. Write `v_i(σ)` for the planned
//! finish time of participant `i` at a planned allocation `σ` (the value
//! Algorithm 5 tracks), `T_max` for the largest committed finish time, and
//! `t` for the decision time. The certificate demands, for every
//! participant with `σ_init ≥ 4`,
//!
//! ```text
//!     RC_FLOOR_SAFETY · m_i / σ_init_i  >  T_max − t          (cert)
//! ```
//!
//! — the PR 3 *shrink floor*: any allocation below `σ_init` costs at least
//! `m_i/σ_init_i` in redistribution alone, so (cert) proves every walk
//! value `v_i(σ < σ_init) ≥ t + RC > T_max`. That closes an induction over
//! the reset loop: while any task is planned below its committed
//! allocation, all such tasks outrank (strictly) every task already at or
//! above its committed allocation, so the head is always a below-task; its
//! scan always finds an improving candidate, because the *free* candidate
//! `σ_init` (worth its committed `t^U ≤ T_max`, strictly below the head's
//! value) is always within reach of the pool; and each grant keeps the
//! invariant. The loop therefore walks every participant back to exactly
//! `σ_init` — consuming exactly the virtually-released processors, never
//! stopping early, never granting past a committed allocation — before the
//! first real decision happens. From that state on, the loop only *grows*
//! tasks, and the warm path replays it verbatim. When (cert) fails —
//! early in a pack's life, or when an arrival rebalance may need to shrink
//! past-sweet-spot tasks — the policy falls back to the two-processor
//! reset unchanged.
//!
//! The binding constraint of (cert) is the queue minimum of a persistent
//! floor queue in the pack state ([`PackState::set_greedy_floor`]): keys
//! change only when a task's allocation changes (every committed plan
//! refreshes its key, completions drop theirs), queries revalidate lazily
//! (`LazyHeapCore::peek_valid`), so the certificate costs `O(changed ·
//! log n)` amortized rather than a per-event scan. As with the PR 3
//! policies, debug builds replay every warm-started decision from scratch
//! on a cloned pack state and compare the outcomes bit for bit.
//!
//! [`PackState::set_greedy_floor`]: crate::state::PackState::set_greedy_floor

use redistrib_model::TaskId;

use crate::ctx::{EligibleSet, HeuristicCtx, PlanEntry};
use crate::incremental::{
    greedy_floor_key, pick_session_entry, IncrementalState, RC_FLOOR_SAFETY,
};

use super::{EndPolicy, FaultPolicy};

/// Rebuilds the schedule greedily over the eligible tasks (plus the faulty
/// task, if any). Shared implementation of [`IteratedGreedy`] and
/// [`EndGreedy`]: live eligible views take the warm-start path when the
/// certificate holds (falling back to the reset otherwise); explicit lists
/// always take the from-scratch reference path.
pub fn greedy_rebuild(ctx: &mut HeuristicCtx<'_>, faulty: Option<TaskId>) {
    match ctx.eligible {
        EligibleSet::Listed(_) => reference_greedy_rebuild(ctx, faulty),
        EligibleSet::Live { .. } => {
            if warm_start_certified(ctx) {
                ctx.scratch.greedy_stats.warm += 1;
                #[cfg(debug_assertions)]
                let check = crate::incremental::CrossCheck::begin(ctx);
                warm_greedy_rebuild(ctx, faulty);
                #[cfg(debug_assertions)]
                check.verify(ctx, |ref_ctx| reference_greedy_rebuild(ref_ctx, faulty));
            } else {
                ctx.scratch.greedy_stats.fallback += 1;
                reference_greedy_rebuild(ctx, faulty);
            }
        }
    }
}

/// From-scratch greedy rebuild (the reference semantics and the fallback
/// when the warm-start certificate fails): every participant is virtually
/// reset to two processors, then pairs flow to the longest planned finish
/// time while it strictly improves (Algorithm 5).
pub fn reference_greedy_rebuild(ctx: &mut HeuristicCtx<'_>, faulty: Option<TaskId>) {
    let mut entries = std::mem::take(&mut ctx.scratch.entries);
    entries.clear();
    ctx.for_each_eligible(|i| {
        entries.push(PlanEntry {
            task: i,
            sigma_init: ctx.state.sigma(i),
            sigma: 0,
            alpha_t: 0.0,
            t_u: 0.0,
            faulty: false,
        });
    });
    if let Some(f) = faulty {
        entries.push(PlanEntry {
            task: f,
            sigma_init: ctx.state.sigma(f),
            sigma: 0,
            alpha_t: ctx.state.runtime(f).alpha,
            t_u: 0.0,
            faulty: true,
        });
    }
    if entries.is_empty() {
        ctx.scratch.entries = entries;
        return;
    }

    // Plan every participant at two processors. Non-participating active
    // tasks keep their allocation, so the plannable pool is everything else.
    let participating: u32 = entries.iter().map(|e| e.sigma_init).sum();
    let mut available = ctx.state.free_count() + participating - 2 * entries.len() as u32;
    for e in &mut entries {
        if !e.faulty {
            e.alpha_t = ctx.alpha_current(e.task);
        }
        e.sigma = 2;
        e.t_u = ctx.candidate_finish(e.task, e.sigma_init, 2, e.alpha_t, e.faulty);
    }

    let mut values = std::mem::take(&mut ctx.scratch.values);
    values.clear();
    values.extend(entries.iter().map(|e| e.t_u));
    let mut list = std::mem::take(&mut ctx.scratch.heap);
    list.reset(&values);
    // The current head is held *out* of the heap (the "hand"): about a
    // third of all grants go to the task that was already head, and those
    // re-enter the loop below with zero heap traffic — one comparison
    // against the best of the rest instead of a push plus a stale pop.
    let mut hand: Option<(usize, f64)> = None;
    while available >= 2 {
        // Longest planned finish time first.
        let (head, t_u) = match hand {
            Some(h) => h,
            None => {
                let Some((i, v)) = list.peek_max() else { break };
                // Hold the head out of the heap; every outcome below
                // either re-files it (`update`) or re-hands it.
                list.remove(i);
                (i, v)
            }
        };
        let (task, sigma_init, sigma, alpha_t, is_faulty) = {
            let e = &entries[head];
            (e.task, e.sigma_init, e.sigma, e.alpha_t, e.faulty)
        };

        // First strictly improving candidate in (σ, σ + available]. The
        // first evaluation (σ + 2) doubles as the post-grant finish time —
        // the grant is always one pair.
        let pmax = sigma + available;
        let mut improvable = false;
        let mut cand = sigma + 2;
        let mut te_first = f64::INFINITY;
        while cand <= pmax {
            let te = ctx.candidate_finish(task, sigma_init, cand, alpha_t, is_faulty);
            if cand == sigma + 2 {
                te_first = te;
            }
            if te < t_u {
                improvable = true;
                break;
            }
            cand += 2;
        }

        if improvable {
            entries[head].sigma += 2;
            available -= 2;
            entries[head].t_u = te_first;
            // Still on top? Same tie rule as the heap: larger value first,
            // ties toward the lowest entry index. On a switch, the peeked
            // best-of-rest *is* the next head (the re-filed hand just lost
            // to it), so it moves straight into the hand — exactly one
            // queue query per grant, zero on consecutive same-head grants.
            match list.peek_max() {
                None => hand = Some((head, te_first)),
                Some((j, vj)) => {
                    if te_first > vj || (te_first == vj && head < j) {
                        hand = Some((head, te_first));
                    } else {
                        list.update(head, te_first);
                        list.remove(j);
                        hand = Some((j, vj));
                    }
                }
            }
        } else {
            // The longest task cannot improve: stop allocating entirely
            // (Algorithm 5 line 30).
            break;
        }
    }

    ctx.scratch.values = values;
    ctx.scratch.heap = list;
    ctx.scratch.entries = entries;
    ctx.commit_entries();
}

/// The warm-start certificate (see the module docs): every started active
/// task holding `σ ≥ 4` must have a shrink floor `RC_FLOOR_SAFETY · m/σ`
/// strictly above the pack's remaining horizon `T_max − now`. Checked
/// against a superset of the participants (windowed tasks included), so a
/// passing certificate is conservative.
///
/// The binding constraint comes off the pack state's persistent floor
/// queue, initialized here on first use and revalidated lazily — stale
/// entries (completed tasks) are repaired at one heap operation each, and
/// debug builds assert the queue is *exact* against a full scan, so a
/// missed [`crate::state::PackState::set_greedy_floor`] hook cannot hide.
fn warm_start_certified(ctx: &mut HeuristicCtx<'_>) -> bool {
    let Some((_, t_max)) = ctx.state.longest_active() else {
        // No started active task: both paths commit nothing.
        return true;
    };
    let was_ready = ctx.state.greedy_floors_ready();
    let mut floors = ctx.state.take_greedy_floors();
    let state = &*ctx.state;
    let calc = ctx.calc;
    let live_floor = |i: TaskId| {
        let rt = state.runtime(i);
        if rt.done || !state.is_started(i) {
            return None;
        }
        greedy_floor_key(calc.task_size(i), state.sigma(i))
    };
    if !was_ready {
        for i in 0..state.num_tasks() {
            if let Some(v) = live_floor(i) {
                floors.update(i, v);
            }
        }
    }
    #[cfg(debug_assertions)]
    for i in 0..state.num_tasks() {
        if let Some(v) = live_floor(i) {
            assert!(
                floors.value(i).to_bits() == v.to_bits(),
                "stale greedy floor for task {i}: an allocation change bypassed set_greedy_floor"
            );
        }
    }
    let binding = floors.peek_valid(live_floor);
    ctx.state.put_greedy_floors(floors);
    match binding {
        None => true,
        Some((_, floor_min)) => floor_min > t_max - ctx.now,
    }
}

/// Which session entry is the current head of the warm improvement loop.
enum WarmHead {
    /// An overlay slot (an adopted eligible task).
    Overlay(usize),
    /// The faulty task's separately-held plan.
    Faulty,
}

/// Warm-started greedy rebuild: resumes the Algorithm 5 improvement loop
/// from the committed allocation (valid under [`warm_start_certified`]),
/// with heads pulled lazily off the persistent latest-finish queue and
/// adopted into the session overlay — per-event work scales with the tasks
/// the loop actually touches, not the pack.
fn warm_greedy_rebuild(ctx: &mut HeuristicCtx<'_>, faulty: Option<TaskId>) {
    let now = ctx.now;
    let EligibleSet::Live { skip, min_t_u } = ctx.eligible else {
        unreachable!("warm path requires a live eligible view")
    };
    debug_assert_eq!(skip, faulty, "fault decisions must skip the faulty task");
    // The faulty task participates unconditionally (Algorithm 5 appends it
    // to the planning list even when ineligible) but is held apart from the
    // overlay: the reference list places it *last*, so on exact
    // finish-time ties the head is the non-faulty entry, and the commit
    // applies its move after every eligible task's.
    let mut f_entry = faulty.map(|f| PlanEntry {
        task: f,
        sigma_init: ctx.state.sigma(f),
        sigma: ctx.state.sigma(f),
        alpha_t: ctx.state.runtime(f).alpha,
        t_u: ctx.state.runtime(f).t_u,
        faulty: true,
    });
    let mut avail = ctx.state.free_count();
    let mut overlay = std::mem::take(&mut ctx.scratch.overlay);
    overlay.begin_session(ctx.state.num_tasks());
    let mut stash = std::mem::take(&mut overlay.stash);
    let mut tails = ctx.state.take_latest_queue();

    while avail >= 2 {
        // Head of the improvement loop: the untouched eligible task with
        // the longest committed finish time (straight off the persistent
        // queue) versus the best session entry versus the faulty plan.
        let fresh = {
            let state = &*ctx.state;
            tails.peek_where(&mut stash, |i| {
                let rt = state.runtime(i);
                Some(i) != skip
                    && !overlay.is_touched(i)
                    && rt.t_last_r <= now
                    && rt.t_u >= min_t_u
            })
        };
        let over_best = overlay.best_max();
        let picked = pick_session_entry(
            fresh,
            over_best,
            |a, b| a > b,
            |i, v| {
                // Adopt the head into the session: pop its live queue entry
                // and pay its α^t — the lazy step that keeps cheap events
                // cheap (tasks never adopted pay nothing at all).
                tails.take_top(&mut stash);
                let sigma_init = ctx.state.sigma(i);
                let alpha_t = ctx.alpha_current(i);
                overlay.adopt(PlanEntry {
                    task: i,
                    sigma_init,
                    sigma: sigma_init,
                    alpha_t,
                    t_u: v,
                    faulty: false,
                })
            },
        );
        let head = match (picked, &f_entry) {
            (Some(slot), Some(f)) if f.t_u > overlay.entry(slot).plan.t_u => WarmHead::Faulty,
            (Some(slot), _) => WarmHead::Overlay(slot),
            (None, Some(_)) => WarmHead::Faulty,
            (None, None) => break,
        };
        let e: PlanEntry = match head {
            WarmHead::Overlay(slot) => overlay.entry(slot).plan,
            WarmHead::Faulty => *f_entry.as_ref().expect("faulty head implies a faulty entry"),
        };

        // An unmoved head whose remaining time sits at or below the growth
        // floor `m/(σ + avail)` provably has no improving candidate — and a
        // failing head scan stops the *whole* loop (Algorithm 5 line 30),
        // so the common "nobody can improve" event costs O(1) evaluations.
        if e.sigma == e.sigma_init
            && e.t_u - now
                <= RC_FLOOR_SAFETY * ctx.calc.task_size(e.task) / f64::from(e.sigma + avail)
        {
            break;
        }

        // First strictly improving candidate in (σ, σ + avail]; the first
        // evaluation (σ + 2) doubles as the post-grant finish time.
        let pmax = e.sigma + avail;
        let mut improvable = false;
        let mut cand = e.sigma + 2;
        let mut te_first = f64::INFINITY;
        while cand <= pmax {
            let te = ctx.candidate_finish(e.task, e.sigma_init, cand, e.alpha_t, e.faulty);
            if cand == e.sigma + 2 {
                te_first = te;
            }
            if te < e.t_u {
                improvable = true;
                break;
            }
            cand += 2;
        }
        if !improvable {
            break;
        }
        avail -= 2;
        match head {
            WarmHead::Overlay(slot) => {
                let p = &mut overlay.entry_mut(slot).plan;
                p.sigma += 2;
                p.t_u = te_first;
            }
            WarmHead::Faulty => {
                let p = f_entry.as_mut().expect("faulty head implies a faulty entry");
                p.sigma += 2;
                p.t_u = te_first;
            }
        }
    }

    // Session end: the queue gets its skipped entries back, and the commit
    // applies the adopted tasks' moves in ascending id order with the
    // faulty task's last — exactly the reference planning-list order.
    tails.restore(&mut stash);
    ctx.state.put_latest_queue(tails);
    overlay.stash = stash;
    let mut entries = std::mem::take(&mut ctx.scratch.entries);
    overlay.drain_plans_sorted(&mut entries);
    if let Some(f) = f_entry {
        entries.push(f);
    }
    ctx.scratch.entries = entries;
    ctx.scratch.overlay = overlay;
    ctx.commit_entries();
}

/// Opt-in *approximate* greedy rebuild: resumes from the committed
/// allocation unconditionally — no certificate, no reset fallback — so
/// every decision costs `O(touched · log n)` whatever the pack's phase.
///
/// The ROADMAP's explicitly-approximate alternative to the certified warm
/// start: the resumed loop only *grows* tasks (free processors flow to the
/// longest planned finish times, redistribution costs included), so unlike
/// Algorithm 5 it cannot shrink a task below its committed allocation —
/// at a fault with an empty free pool it does nothing where the exact
/// rebuild would steal from the shortest tasks. Never selected by the
/// default heuristics; reach it through [`Heuristic::WarmGreedy`] (see
/// `experiments warm` for the measured quality gap). Explicit eligible
/// lists run the exact reference instead, so a `reference_policies`
/// configuration is the exact counterpart on identical seeds.
///
/// [`Heuristic::WarmGreedy`]: crate::policies::Heuristic::WarmGreedy
pub fn greedy_rebuild_warm(ctx: &mut HeuristicCtx<'_>, faulty: Option<TaskId>) {
    match ctx.eligible {
        EligibleSet::Listed(_) => reference_greedy_rebuild(ctx, faulty),
        EligibleSet::Live { .. } => {
            ctx.scratch.greedy_stats.warm += 1;
            warm_greedy_rebuild(ctx, faulty);
        }
    }
}

/// `IteratedGreedy` fault policy (Algorithm 5): on each failure where the
/// faulty task became the longest, rebuild the whole schedule greedily,
/// redistribution costs included.
#[derive(Debug, Clone, Copy, Default)]
pub struct IteratedGreedy;

impl FaultPolicy for IteratedGreedy {
    fn on_fault(&self, ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
        greedy_rebuild(ctx, Some(faulty));
    }
}

/// `EndGreedy` end policy: when a task ends, rebuild the whole schedule
/// greedily instead of only handing out the released processors (§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndGreedy;

impl EndPolicy for EndGreedy {
    fn on_task_end(&self, ctx: &mut HeuristicCtx<'_>) {
        greedy_rebuild(ctx, None);
    }
}

/// Approximate warm fault policy: [`greedy_rebuild_warm`] toward the
/// faulty task (no reset, grow-only; see the function docs for the
/// fidelity trade).
#[derive(Debug, Clone, Copy, Default)]
pub struct IteratedGreedyWarm;

impl FaultPolicy for IteratedGreedyWarm {
    fn on_fault(&self, ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
        greedy_rebuild_warm(ctx, Some(faulty));
    }
}

/// Approximate warm end policy: [`greedy_rebuild_warm`] over the released
/// processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct EndGreedyWarm;

impl EndPolicy for EndGreedyWarm {
    fn on_task_end(&self, ctx: &mut HeuristicCtx<'_>) {
        greedy_rebuild_warm(ctx, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PolicyScratch;
    use crate::state::PackState;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::trace::TraceLog;
    use redistrib_sim::units;
    use std::sync::Arc;

    fn fixture(sizes: &[f64], sigmas: &[u32], p: u32) -> (TimeCalc, PackState) {
        let workload = Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, sigmas);
        for (i, &s) in sigmas.iter().enumerate() {
            let tu = calc.remaining(i, s, 1.0);
            state.set_t_u(i, tu);
        }
        (calc, state)
    }

    fn run_greedy(
        calc: &TimeCalc,
        state: &mut PackState,
        now: f64,
        faulty: Option<TaskId>,
    ) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> =
            state.active_tasks().filter(|&i| Some(i) != faulty).collect();
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, faulty);
        count
    }

    /// Runs the live-view path (warm start + built-in debug cross-check, or
    /// the certified fallback), returning the redistribution count and the
    /// warm/fallback counters.
    fn run_greedy_live(
        calc: &TimeCalc,
        state: &mut PackState,
        now: f64,
        faulty: Option<TaskId>,
    ) -> (u64, crate::incremental::GreedyWarmStats) {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let mut scratch = PolicyScratch::default();
        let eligible = match faulty {
            Some(f) => EligibleSet::live_fault(f, f64::NEG_INFINITY),
            None => EligibleSet::live(),
        };
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible,
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, faulty);
        (count, scratch.greedy_stats)
    }

    #[test]
    fn end_variant_absorbs_free_processors() {
        // Two tasks on 4+4 of 16 processors; 8 free.
        let (calc, mut state) = fixture(&[2.2e6, 1.6e6], &[4, 4], 16);
        let mk_before = state.makespan_estimate();
        run_greedy(&calc, &mut state, 1000.0, None);
        assert_eq!(state.free_count(), 0, "all pairs absorbed at this scale");
        assert!(state.makespan_estimate() < mk_before);
        assert!(state.check_invariants());
    }

    #[test]
    fn rebalances_between_tasks() {
        // Task 0 is much larger but starts tiny: the rebuild must shift
        // processors away from the over-provisioned task 1.
        let (calc, mut state) = fixture(&[2.4e6, 1.5e6], &[2, 10], 12);
        let mk_before = state.makespan_estimate();
        let count = run_greedy(&calc, &mut state, 5000.0, None);
        assert!(count >= 2, "both tasks should move");
        assert!(state.sigma(0) > 2, "large task must gain");
        assert!(state.sigma(1) < 10, "small task must shed");
        assert!(state.makespan_estimate() < mk_before);
        assert!(state.check_invariants());
    }

    #[test]
    fn faulty_task_prioritized() {
        let (calc, mut state) = fixture(&[2.0e6, 2.0e6], &[4, 4], 12);
        // Simulate the engine's fault bookkeeping on task 0: it lost work.
        let t = 2000.0;
        let j = state.sigma(0);
        let d = calc.platform().downtime;
        let r = calc.recovery_time(0, j);
        {
            let rt = state.runtime_mut(0);
            rt.alpha = 1.0; // rolled back to start (no checkpoint yet)
            rt.t_last_r = t + d + r;
        }
        let anchor = state.runtime(0).t_last_r;
        let rem = calc.remaining(0, j, 1.0);
        state.runtime_mut(0).t_u = anchor + rem;
        run_greedy(&calc, &mut state, t, Some(0));
        assert!(
            state.sigma(0) >= state.sigma(1),
            "faulty longest task should not end with fewer procs: {} vs {}",
            state.sigma(0),
            state.sigma(1)
        );
        assert!(state.check_invariants());
    }

    #[test]
    fn same_allocation_pays_nothing() {
        // A balanced plan should leave allocations unchanged and commit no
        // redistribution.
        let (calc, mut state) = fixture(&[2.0e6, 2.0e6], &[8, 8], 16);
        let count = run_greedy(&calc, &mut state, 0.0, None);
        assert_eq!(count, 0, "already-optimal schedule must not be touched");
        assert_eq!(state.sigma(0), 8);
        assert_eq!(state.sigma(1), 8);
    }

    #[test]
    fn empty_eligible_is_noop() {
        let (calc, mut state) = fixture(&[2.0e6], &[4], 8);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = vec![];
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 10.0,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, None);
        assert_eq!(count, 0);
    }

    #[test]
    fn ineligible_tasks_keep_processors() {
        let (calc, mut state) = fixture(&[2.0e6, 2.0e6, 2.0e6], &[4, 4, 4], 16);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        // Task 2 mid-redistribution: not eligible.
        let eligible = vec![0usize, 1];
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 1000.0,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, None);
        assert_eq!(state.sigma(2), 4, "ineligible task must be untouched");
        assert!(state.check_invariants());
    }

    /// A pack late in its life: every task holds its committed allocation
    /// with only a fraction `alpha` of work left, so the remaining horizon
    /// sits below every shrink floor and the warm-start certificate holds.
    fn drained_fixture(
        sizes: &[f64],
        sigmas: &[u32],
        p: u32,
        alpha: f64,
    ) -> (TimeCalc, PackState) {
        let workload = Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, sigmas);
        for (i, &s) in sigmas.iter().enumerate() {
            state.runtime_mut(i).alpha = alpha;
            let tu = calc.remaining(i, s, alpha);
            state.set_t_u(i, tu);
        }
        (calc, state)
    }

    #[test]
    fn warm_start_matches_reference_in_drained_pack() {
        // Remaining horizon below every shrink floor: the certificate
        // holds, the live path warm-starts, and the outcome is
        // bit-identical to the reference (the warm path additionally
        // replays its own debug cross-check internally).
        for p in [12u32, 16, 24] {
            let (calc, mut a) = drained_fixture(&[2.2e6, 1.6e6], &[4, 4], p, 0.004);
            let (_, mut b) = drained_fixture(&[2.2e6, 1.6e6], &[4, 4], p, 0.004);
            let ca = run_greedy(&calc, &mut a, 0.0, None);
            let (cb, stats) = run_greedy_live(&calc, &mut b, 0.0, None);
            assert_eq!(ca, cb, "p={p}");
            assert!(a.assignment_eq(&b), "p={p}");
            assert_eq!(stats.warm, 1, "certificate must hold in a drained pack (p={p})");
            assert_eq!(stats.fallback, 0);
        }
    }

    #[test]
    fn early_pack_falls_back_to_reset() {
        // At t = 0 every task still has its whole execution ahead: the
        // remaining horizon exceeds the shrink floors, the certificate
        // fails, and the live path runs the two-processor reset — with the
        // same outcome as the reference.
        let (calc, mut a) = fixture(&[2.4e6, 1.5e6], &[2, 10], 12);
        let (_, mut b) = fixture(&[2.4e6, 1.5e6], &[2, 10], 12);
        let ca = run_greedy(&calc, &mut a, 0.0, None);
        let (cb, stats) = run_greedy_live(&calc, &mut b, 0.0, None);
        assert_eq!(ca, cb);
        assert!(a.assignment_eq(&b));
        assert_eq!(stats.fallback, 1, "reset must be exercised early in the pack");
        assert_eq!(stats.warm, 0);
        // The fallback must still be able to shed the over-provisioned
        // task — the decision the certificate exists to protect.
        assert!(b.sigma(1) < 10, "fallback must shed the over-provisioned task");
    }

    #[test]
    fn fault_path_always_falls_back() {
        // After a rollback the faulty task's horizon includes downtime plus
        // recovery, and its recovery time equals its checkpoint cost
        // `m_f/σ_f` — at or above the smallest shrink floor by
        // construction. The certificate therefore cannot hold on the fault
        // path; the live decision must take the (exact) reset and match
        // the reference bit for bit.
        let build = || {
            let (calc, mut state) =
                drained_fixture(&[2.0e6, 2.0e6, 1.8e6], &[4, 4, 4], 16, 0.01);
            let t = 100.0;
            let j = state.sigma(0);
            let anchor = t + calc.platform().downtime + calc.recovery_time(0, j);
            {
                let rt = state.runtime_mut(0);
                rt.alpha = 0.02; // rolled back one period
                rt.t_last_r = anchor;
            }
            let rem = calc.remaining(0, j, 0.02);
            state.set_t_u(0, anchor + rem);
            (calc, state, t)
        };
        let (calc, mut a, t) = build();
        let (_, mut b, _) = build();
        let eligible: Vec<usize> = a.active_tasks().filter(|&i| i != 0).collect();
        let mut trace = TraceLog::disabled();
        let mut count_a = 0;
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut a,
            trace: &mut trace,
            now: t,
            eligible: EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count_a,
        };
        greedy_rebuild(&mut ctx, Some(0));
        let (count_b, stats) = run_greedy_live(&calc, &mut b, t, Some(0));
        assert_eq!(count_a, count_b);
        assert!(a.assignment_eq(&b));
        assert_eq!(stats.fallback, 1, "fault decisions must take the exact reset");
        assert_eq!(stats.warm, 0);
    }

    #[test]
    fn floor_queue_stays_exact_across_invocations() {
        // A committed reallocation between two certified decisions must
        // refresh the moved task's floor through set_greedy_floor — the
        // second invocation's debug exactness scan fails otherwise.
        let (calc, mut state) = drained_fixture(&[2.2e6, 1.6e6], &[4, 4], 16, 0.004);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 0.0,
            eligible: EligibleSet::live(),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, None);
        // Commit an allocation change through the hooked path (the floor
        // queue is live now), then decide again.
        let alpha_t = ctx.alpha_current(0);
        ctx.commit(&[crate::ctx::Plan {
            task: 0,
            sigma_init: 4,
            sigma_new: 6,
            alpha_t,
            faulty: false,
        }]);
        ctx.now = 1.0;
        // The mover's anchor advanced by RC + C, so the horizon now exceeds
        // the floors and the certificate correctly declines — what matters
        // is that its debug exactness scan accepted the refreshed floor
        // (a bypassed set_greedy_floor would have panicked here).
        greedy_rebuild(&mut ctx, None);
        assert_eq!(scratch.greedy_stats.warm, 1);
        assert_eq!(scratch.greedy_stats.fallback, 1);
        assert!(state.check_invariants());
    }

    #[test]
    fn approx_warm_policy_is_deterministic_and_conserves() {
        // The opt-in approximate variant: grow-only resumes from the
        // committed allocation. It must stay deterministic, keep the
        // processor assignment sound, and absorb free pairs when growth
        // genuinely improves (mid-run, plenty left to gain).
        let (calc, mut a) = fixture(&[2.2e6, 1.6e6], &[4, 4], 16);
        let (_, mut b) = fixture(&[2.2e6, 1.6e6], &[4, 4], 16);
        let run_warm = |calc: &TimeCalc, state: &mut PackState| {
            let mut trace = TraceLog::disabled();
            let mut count = 0;
            let mut scratch = PolicyScratch::default();
            let mut ctx = HeuristicCtx {
                calc,
                state,
                trace: &mut trace,
                now: 1000.0,
                eligible: EligibleSet::live(),
                scratch: &mut scratch,
                pseudocode_fault_bias: false,
                redistributions: &mut count,
            };
            EndGreedyWarm.on_task_end(&mut ctx);
            count
        };
        let ca = run_warm(&calc, &mut a);
        let cb = run_warm(&calc, &mut b);
        assert_eq!(ca, cb);
        assert!(a.assignment_eq(&b));
        assert!(ca > 0, "free pairs improve mid-run tasks");
        assert_eq!(a.free_count(), 0, "all pairs absorbed at this scale");
        assert!(a.check_invariants());
    }
}
