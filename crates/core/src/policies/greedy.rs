//! Algorithm 5 (`IteratedGreedy`) and its task-end variant (`EndGreedy`).
//!
//! Both rebuild a complete schedule from scratch, like Algorithm 1, but
//! accounting for the cost of moving each task away from its current
//! allocation: every participating task is virtually reset to two
//! processors, then the task with the longest planned finish time greedily
//! receives pairs while it can strictly improve. A candidate equal to the
//! task's *current* allocation is free (the task simply continues); any
//! other candidate pays `RC^{σ_init→k}` plus the post-redistribution
//! checkpoint — and, for the faulty task, downtime and recovery (§3.3.2
//! text; the literal pseudocode omits the latter, see
//! `pseudocode_fault_bias`).
//!
//! Unlike `EndLocal` and `ShortestTasksFirst`, the greedy rebuild has no
//! cheaper incremental form: Algorithm 5 *resets every participant* to two
//! processors, so its per-event work is inherently `Θ(participants +
//! pairs granted)` — already bounded by the tasks the decision touches.
//! The incremental engine still avoids the per-event eligible-list
//! materialization by deriving the participant set lazily from the pack
//! state ([`HeuristicCtx::for_each_eligible`]).

use redistrib_model::TaskId;

use crate::ctx::{HeuristicCtx, PlanEntry};

use super::{EndPolicy, FaultPolicy};

/// Rebuilds the schedule greedily over the eligible tasks (plus the faulty
/// task, if any). Shared implementation of [`IteratedGreedy`] and
/// [`EndGreedy`].
pub fn greedy_rebuild(ctx: &mut HeuristicCtx<'_>, faulty: Option<TaskId>) {
    let mut entries = std::mem::take(&mut ctx.scratch.entries);
    entries.clear();
    ctx.for_each_eligible(|i| {
        entries.push(PlanEntry {
            task: i,
            sigma_init: ctx.state.sigma(i),
            sigma: 0,
            alpha_t: 0.0,
            t_u: 0.0,
            faulty: false,
        });
    });
    if let Some(f) = faulty {
        entries.push(PlanEntry {
            task: f,
            sigma_init: ctx.state.sigma(f),
            sigma: 0,
            alpha_t: ctx.state.runtime(f).alpha,
            t_u: 0.0,
            faulty: true,
        });
    }
    if entries.is_empty() {
        ctx.scratch.entries = entries;
        return;
    }

    // Plan every participant at two processors. Non-participating active
    // tasks keep their allocation, so the plannable pool is everything else.
    let participating: u32 = entries.iter().map(|e| e.sigma_init).sum();
    let mut available = ctx.state.free_count() + participating - 2 * entries.len() as u32;
    for e in &mut entries {
        if !e.faulty {
            e.alpha_t = ctx.alpha_current(e.task);
        }
        e.sigma = 2;
        e.t_u = ctx.candidate_finish(e.task, e.sigma_init, 2, e.alpha_t, e.faulty);
    }

    let mut values = std::mem::take(&mut ctx.scratch.values);
    values.clear();
    values.extend(entries.iter().map(|e| e.t_u));
    let mut list = std::mem::take(&mut ctx.scratch.heap);
    list.reset(&values);
    while available >= 2 {
        // Longest planned finish time first.
        let (head, t_u) = list.peek_max().expect("entries non-empty");
        let (task, sigma_init, sigma, alpha_t, is_faulty) = {
            let e = &entries[head];
            (e.task, e.sigma_init, e.sigma, e.alpha_t, e.faulty)
        };

        // First strictly improving candidate in (σ, σ + available]. The
        // first evaluation (σ + 2) doubles as the post-grant finish time —
        // the grant is always one pair.
        let pmax = sigma + available;
        let mut improvable = false;
        let mut cand = sigma + 2;
        let mut te_first = f64::INFINITY;
        while cand <= pmax {
            let te = ctx.candidate_finish(task, sigma_init, cand, alpha_t, is_faulty);
            if cand == sigma + 2 {
                te_first = te;
            }
            if te < t_u {
                improvable = true;
                break;
            }
            cand += 2;
        }

        if improvable {
            entries[head].sigma += 2;
            available -= 2;
            entries[head].t_u = te_first;
            list.update(head, te_first);
        } else {
            // The longest task cannot improve: stop allocating entirely
            // (Algorithm 5 line 30).
            break;
        }
    }

    ctx.scratch.values = values;
    ctx.scratch.heap = list;
    ctx.scratch.entries = entries;
    ctx.commit_entries();
}

/// `IteratedGreedy` fault policy (Algorithm 5): on each failure where the
/// faulty task became the longest, rebuild the whole schedule greedily,
/// redistribution costs included.
#[derive(Debug, Clone, Copy, Default)]
pub struct IteratedGreedy;

impl FaultPolicy for IteratedGreedy {
    fn on_fault(&self, ctx: &mut HeuristicCtx<'_>, faulty: TaskId) {
        greedy_rebuild(ctx, Some(faulty));
    }
}

/// `EndGreedy` end policy: when a task ends, rebuild the whole schedule
/// greedily instead of only handing out the released processors (§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndGreedy;

impl EndPolicy for EndGreedy {
    fn on_task_end(&self, ctx: &mut HeuristicCtx<'_>) {
        greedy_rebuild(ctx, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PolicyScratch;
    use crate::state::PackState;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::trace::TraceLog;
    use redistrib_sim::units;
    use std::sync::Arc;

    fn fixture(sizes: &[f64], sigmas: &[u32], p: u32) -> (TimeCalc, PackState) {
        let workload = Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        );
        let calc = TimeCalc::new(workload, Platform::with_mtbf(p, units::years(100.0)));
        let mut state = PackState::new(p, sigmas);
        for (i, &s) in sigmas.iter().enumerate() {
            let tu = calc.remaining(i, s, 1.0);
            state.set_t_u(i, tu);
        }
        (calc, state)
    }

    fn run_greedy(
        calc: &TimeCalc,
        state: &mut PackState,
        now: f64,
        faulty: Option<TaskId>,
    ) -> u64 {
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> =
            state.active_tasks().filter(|&i| Some(i) != faulty).collect();
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc,
            state,
            trace: &mut trace,
            now,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, faulty);
        count
    }

    #[test]
    fn end_variant_absorbs_free_processors() {
        // Two tasks on 4+4 of 16 processors; 8 free.
        let (calc, mut state) = fixture(&[2.2e6, 1.6e6], &[4, 4], 16);
        let mk_before = state.makespan_estimate();
        run_greedy(&calc, &mut state, 1000.0, None);
        assert_eq!(state.free_count(), 0, "all pairs absorbed at this scale");
        assert!(state.makespan_estimate() < mk_before);
        assert!(state.check_invariants());
    }

    #[test]
    fn rebalances_between_tasks() {
        // Task 0 is much larger but starts tiny: the rebuild must shift
        // processors away from the over-provisioned task 1.
        let (calc, mut state) = fixture(&[2.4e6, 1.5e6], &[2, 10], 12);
        let mk_before = state.makespan_estimate();
        let count = run_greedy(&calc, &mut state, 5000.0, None);
        assert!(count >= 2, "both tasks should move");
        assert!(state.sigma(0) > 2, "large task must gain");
        assert!(state.sigma(1) < 10, "small task must shed");
        assert!(state.makespan_estimate() < mk_before);
        assert!(state.check_invariants());
    }

    #[test]
    fn faulty_task_prioritized() {
        let (calc, mut state) = fixture(&[2.0e6, 2.0e6], &[4, 4], 12);
        // Simulate the engine's fault bookkeeping on task 0: it lost work.
        let t = 2000.0;
        let j = state.sigma(0);
        let d = calc.platform().downtime;
        let r = calc.recovery_time(0, j);
        {
            let rt = state.runtime_mut(0);
            rt.alpha = 1.0; // rolled back to start (no checkpoint yet)
            rt.t_last_r = t + d + r;
        }
        let anchor = state.runtime(0).t_last_r;
        let rem = calc.remaining(0, j, 1.0);
        state.runtime_mut(0).t_u = anchor + rem;
        run_greedy(&calc, &mut state, t, Some(0));
        assert!(
            state.sigma(0) >= state.sigma(1),
            "faulty longest task should not end with fewer procs: {} vs {}",
            state.sigma(0),
            state.sigma(1)
        );
        assert!(state.check_invariants());
    }

    #[test]
    fn same_allocation_pays_nothing() {
        // A balanced plan should leave allocations unchanged and commit no
        // redistribution.
        let (calc, mut state) = fixture(&[2.0e6, 2.0e6], &[8, 8], 16);
        let count = run_greedy(&calc, &mut state, 0.0, None);
        assert_eq!(count, 0, "already-optimal schedule must not be touched");
        assert_eq!(state.sigma(0), 8);
        assert_eq!(state.sigma(1), 8);
    }

    #[test]
    fn empty_eligible_is_noop() {
        let (calc, mut state) = fixture(&[2.0e6], &[4], 8);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        let eligible: Vec<usize> = vec![];
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 10.0,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, None);
        assert_eq!(count, 0);
    }

    #[test]
    fn ineligible_tasks_keep_processors() {
        let (calc, mut state) = fixture(&[2.0e6, 2.0e6, 2.0e6], &[4, 4, 4], 16);
        let mut trace = TraceLog::disabled();
        let mut count = 0;
        // Task 2 mid-redistribution: not eligible.
        let eligible = vec![0usize, 1];
        let mut scratch = PolicyScratch::default();
        let mut ctx = HeuristicCtx {
            calc: &calc,
            state: &mut state,
            trace: &mut trace,
            now: 1000.0,
            eligible: crate::ctx::EligibleSet::Listed(&eligible),
            scratch: &mut scratch,
            pseudocode_fault_bias: false,
            redistributions: &mut count,
        };
        greedy_rebuild(&mut ctx, None);
        assert_eq!(state.sigma(2), 4, "ineligible task must be untouched");
        assert!(state.check_invariants());
    }
}
