//! Lazy-deletion priority queues over `(value, index)` pairs.
//!
//! The greedy loops of Algorithms 1, 3 and 5 repeatedly need "the task with
//! the longest expected finish time", and the engines' event loops need
//! "the active task with the earliest end", with values that change as
//! processors are granted or events land. A `BinaryHeap` with stale-entry
//! skipping gives `O(log n)` per operation: updates push a fresh entry, and
//! `peek` discards entries whose value no longer matches the authoritative
//! `current` array.
//!
//! One generic core ([`LazyHeapCore`]) serves both directions through an
//! ordering marker: [`LazyMaxHeap`] (heuristic planning lists, the pack's
//! latest-finish queue) and [`LazyMinHeap`] (the engines' end-event
//! queues). Ties break toward the lowest index in both, matching the
//! deterministic list order used throughout (`head(L)` on equal times is
//! the earliest task) — so the heaps return bit-identical picks to the
//! linear scans they replace.
//!
//! Two features beyond a plain lazy heap:
//!
//! * **small-n cutover** — below [`SMALL_N`] indices the `BinaryHeap` is
//!   bypassed entirely and every query is a linear scan over the
//!   authoritative array. For tiny packs the scan is faster than heap
//!   maintenance (no allocation, no stale-entry traffic) and the pick is
//!   identical by construction;
//! * **session filtering** ([`LazyHeapCore::peek_where`]) — the incremental
//!   policies query "the best index satisfying a predicate" against the
//!   *persistent* queues without rebuilding them per event. Non-matching
//!   live entries are popped into a caller-owned stash and re-pushed by
//!   [`LazyHeapCore::restore`] when the decision session ends; the
//!   predicate must therefore only shrink during a session (eligibility is
//!   fixed at the event timestamp and the touched-set only grows).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::marker::PhantomData;

/// Below this many indices the queues skip the `BinaryHeap` and answer
/// every query with a linear scan over the authoritative array.
pub const SMALL_N: usize = 32;

/// Direction marker for [`LazyHeapCore`].
pub trait HeapOrder {
    /// Whether value `a` is *strictly* better than `b` for the top spot.
    fn beats(a: f64, b: f64) -> bool;
}

/// Max-first ordering (longest expected finish time).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxOrder;

/// Min-first ordering (earliest end event).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinOrder;

impl HeapOrder for MaxOrder {
    fn beats(a: f64, b: f64) -> bool {
        a > b
    }
}

impl HeapOrder for MinOrder {
    fn beats(a: f64, b: f64) -> bool {
        a < b
    }
}

/// A stashed live entry popped during a filtered session query; re-pushed
/// by [`LazyHeapCore::restore`].
pub type StashEntry = (usize, f64);

#[derive(Debug, Clone, Copy)]
struct Entry<O> {
    val: f64,
    idx: usize,
    _order: PhantomData<O>,
}

impl<O> Entry<O> {
    fn new(idx: usize, val: f64) -> Self {
        Self { val, idx, _order: PhantomData }
    }
}

impl<O: HeapOrder> PartialEq for Entry<O> {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val && self.idx == other.idx
    }
}
impl<O: HeapOrder> Eq for Entry<O> {}

impl<O: HeapOrder> Ord for Entry<O> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` pops the greatest entry. Order values so the better
        // (per `O`) value compares greater; ties prefer the lowest index
        // (reverse idx so the lower index compares greater).
        let value_order = if O::beats(1.0, 0.0) {
            self.val.partial_cmp(&other.val).expect("heap values are never NaN")
        } else {
            other.val.partial_cmp(&self.val).expect("heap values are never NaN")
        };
        value_order.then_with(|| other.idx.cmp(&self.idx))
    }
}
impl<O: HeapOrder> PartialOrd for Entry<O> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy-deletion priority queue with *membership*: indices may be absent
/// (NaN in the authoritative array) and only participate while present.
///
/// Two construction styles:
/// * [`LazyHeapCore::with_len`] — all indices start absent; they enter at
///   their first [`LazyHeapCore::update`] (the engines' event queues);
/// * [`LazyHeapCore::new`] / [`LazyHeapCore::reset`] — every index present
///   with the given seed value (heuristic planning lists).
#[derive(Debug, Clone)]
pub struct LazyHeapCore<O: HeapOrder> {
    heap: BinaryHeap<Entry<O>>,
    /// Authoritative values; NaN marks "absent".
    current: Vec<f64>,
    /// Small-n mode: no heap traffic, every query scans `current`.
    small: bool,
}

impl<O: HeapOrder> Default for LazyHeapCore<O> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), current: Vec::new(), small: true }
    }
}

/// Max-first lazy queue (planning lists, latest-finish queue).
pub type LazyMaxHeap = LazyHeapCore<MaxOrder>;

/// Min-first lazy queue (the engines' end-event queues).
pub type LazyMinHeap = LazyHeapCore<MinOrder>;

impl<O: HeapOrder> LazyHeapCore<O> {
    /// Creates a queue for indices `0..n`, all initially absent.
    #[must_use]
    pub fn with_len(n: usize) -> Self {
        Self { heap: BinaryHeap::new(), current: vec![f64::NAN; n], small: n < SMALL_N }
    }

    /// Builds a queue over `values` (index `i` carries `values[i]`).
    ///
    /// # Panics
    /// Panics if any value is NaN.
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        let mut h = Self::default();
        h.reset(values);
        h
    }

    /// Reinitializes the queue over `values`, retaining allocations — the
    /// zero-alloc path used by policy scratch buffers.
    ///
    /// Infinities are allowed (degenerate platforms can produce infinite
    /// expected times; they flowed through the pre-heap linear scans too);
    /// NaN is rejected — it is the lazy-deletion sentinel.
    ///
    /// # Panics
    /// Panics if any value is NaN.
    pub fn reset(&mut self, values: &[f64]) {
        assert!(values.iter().all(|v| !v.is_nan()), "heap values must not be NaN");
        self.small = values.len() < SMALL_N;
        let mut storage = std::mem::take(&mut self.heap).into_vec();
        storage.clear();
        if !self.small {
            storage.extend(values.iter().enumerate().map(|(idx, &val)| Entry::new(idx, val)));
        }
        // O(n) Floyd heapify instead of n sift-up pushes; the internal
        // layout is irrelevant to picks (the comparator is a total order).
        self.heap = BinaryHeap::from(storage);
        self.current.clear();
        self.current.extend_from_slice(values);
    }

    /// Number of indices the queue is sized for (present or absent).
    #[must_use]
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Extends the index space to `new_len`; new indices start absent.
    /// Crossing the small-n cutover populates the heap from the live
    /// entries, so picks stay identical to the linear scan they replace
    /// (the comparator is a total order — internal layout never matters).
    ///
    /// # Panics
    /// Panics if `new_len` shrinks the queue.
    pub fn grow_len(&mut self, new_len: usize) {
        assert!(new_len >= self.current.len(), "queues never shrink");
        self.current.resize(new_len, f64::NAN);
        if self.small && new_len >= SMALL_N {
            self.small = false;
            self.heap.extend(
                self.current
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_nan())
                    .map(|(idx, &val)| Entry::new(idx, val)),
            );
        }
    }

    /// Whether no index is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.current.iter().all(|v| v.is_nan())
    }

    /// Sets `idx`'s value (inserting it on first touch).
    ///
    /// # Panics
    /// Panics if `val` is NaN.
    pub fn update(&mut self, idx: usize, val: f64) {
        assert!(!val.is_nan(), "heap values must not be NaN");
        self.current[idx] = val;
        if !self.small {
            self.heap.push(Entry::new(idx, val));
        }
    }

    /// Removes `idx` from consideration.
    pub fn remove(&mut self, idx: usize) {
        self.current[idx] = f64::NAN;
    }

    /// Whether `idx` currently participates.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        !self.current[idx].is_nan()
    }

    /// Current value of `idx` (NaN if absent).
    #[must_use]
    pub fn value(&self, idx: usize) -> f64 {
        self.current[idx]
    }

    /// Returns the best `(index, value)` without removing it, discarding
    /// stale heap entries along the way. `None` when empty.
    pub fn peek(&mut self) -> Option<(usize, f64)> {
        if self.small {
            return self.scan(|_| true);
        }
        while let Some(top) = self.heap.peek() {
            if self.current[top.idx] == top.val {
                return Some((top.idx, top.val));
            }
            self.heap.pop();
        }
        None
    }

    /// Returns the best present `(index, value)` whose value is *confirmed*
    /// by `current`: for each candidate top entry, `current(idx)` re-derives
    /// the authoritative value (`None` drops the index entirely); a
    /// mismatching entry is repaired in place and the query continues.
    ///
    /// This is the primitive behind persistent queues keyed by values the
    /// queue cannot observe changing (the greedy warm-start floor queue,
    /// whose keys derive from `m_i/σ_i`): stale entries are repaired
    /// lazily, one heap operation per externally-caused change, instead of
    /// rebuilding the queue per query. `current` must be deterministic
    /// within one call — a repaired index is trusted for the rest of the
    /// query, which bounds the work at one repair per index.
    pub fn peek_valid(
        &mut self,
        mut current: impl FnMut(usize) -> Option<f64>,
    ) -> Option<(usize, f64)> {
        loop {
            let (idx, val) = self.peek()?;
            match current(idx) {
                None => self.remove(idx),
                Some(truth) if truth == val => return Some((idx, val)),
                Some(truth) => self.update(idx, truth),
            }
        }
    }

    /// Returns the best `(index, value)` among present indices satisfying
    /// `pred`, for a decision *session* against a persistent queue.
    ///
    /// Live entries failing `pred` are popped into `stash` (so repeated
    /// session queries skip them in O(1)); the caller must hand the same
    /// stash to [`LazyHeapCore::restore`] when the session ends. `pred`
    /// must only shrink over a session: an index rejected once must stay
    /// rejected until `restore`.
    pub fn peek_where(
        &mut self,
        stash: &mut Vec<StashEntry>,
        mut pred: impl FnMut(usize) -> bool,
    ) -> Option<(usize, f64)> {
        if self.small {
            return self.scan(pred);
        }
        while let Some(top) = self.heap.peek() {
            let (idx, val) = (top.idx, top.val);
            if self.current[idx] != val {
                self.heap.pop(); // stale
            } else if pred(idx) {
                return Some((idx, val));
            } else {
                self.heap.pop();
                stash.push((idx, val));
            }
        }
        None
    }

    /// Pops the live top entry returned by an immediately-preceding
    /// successful [`LazyHeapCore::peek_where`] into `stash`, so the session
    /// stops seeing it while the queue keeps its authoritative value (the
    /// caller tracks the index in its own overlay from here on).
    ///
    /// No-op in small-n mode — there the caller's predicate is the only
    /// filter, and it must exclude adopted indices on its own.
    pub fn take_top(&mut self, stash: &mut Vec<StashEntry>) {
        if self.small {
            return;
        }
        while let Some(top) = self.heap.pop() {
            if self.current[top.idx] == top.val {
                stash.push((top.idx, top.val));
                return;
            }
        }
        debug_assert!(false, "take_top on an empty queue");
    }

    /// Ends a session: re-pushes every stashed entry. Entries whose index
    /// was recommitted meanwhile are stale duplicates and get discarded by
    /// the normal lazy machinery.
    pub fn restore(&mut self, stash: &mut Vec<StashEntry>) {
        if !self.small {
            self.heap.extend(stash.iter().map(|&(idx, val)| Entry::new(idx, val)));
        }
        stash.clear();
    }

    /// Linear-scan pick (small-n mode and reference cross-checks): the best
    /// present value passing `pred`, ties toward the lowest index.
    fn scan(&self, mut pred: impl FnMut(usize) -> bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (idx, &val) in self.current.iter().enumerate() {
            if val.is_nan() || !pred(idx) {
                continue;
            }
            if best.is_none_or(|(_, b)| O::beats(val, b)) {
                best = Some((idx, val));
            }
        }
        best
    }
}

impl LazyMaxHeap {
    /// Max-direction alias of [`LazyHeapCore::peek`].
    pub fn peek_max(&mut self) -> Option<(usize, f64)> {
        self.peek()
    }
}

impl LazyMinHeap {
    /// Min-direction alias of [`LazyHeapCore::peek`].
    pub fn peek_min(&mut self) -> Option<(usize, f64)> {
        self.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forces heap mode regardless of size (exercises the lazy machinery
    /// even below the small-n cutover).
    fn heap_mode<O: HeapOrder>(mut h: LazyHeapCore<O>) -> LazyHeapCore<O> {
        if h.small {
            h.small = false;
            h.heap.extend(
                h.current
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_nan())
                    .map(|(idx, &val)| Entry::new(idx, val)),
            );
        }
        h
    }

    #[test]
    fn peek_returns_max() {
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
            if force_heap {
                h = heap_mode(h);
            }
            assert_eq!(h.peek_max(), Some((1, 9.0)));
            // Peek does not remove.
            assert_eq!(h.peek_max(), Some((1, 9.0)));
        }
    }

    #[test]
    fn update_moves_entries() {
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
            if force_heap {
                h = heap_mode(h);
            }
            h.update(1, 1.0);
            assert_eq!(h.peek_max(), Some((2, 5.0)));
            h.update(0, 50.0);
            assert_eq!(h.peek_max(), Some((0, 50.0)));
        }
    }

    #[test]
    fn remove_skips_entries() {
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
            if force_heap {
                h = heap_mode(h);
            }
            h.remove(1);
            assert_eq!(h.peek_max(), Some((2, 5.0)));
            h.remove(2);
            assert_eq!(h.peek_max(), Some((0, 3.0)));
            h.remove(0);
            assert_eq!(h.peek_max(), None);
        }
    }

    #[test]
    fn ties_break_to_lowest_index() {
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::new(&[7.0, 7.0, 7.0]);
            if force_heap {
                h = heap_mode(h);
            }
            assert_eq!(h.peek_max(), Some((0, 7.0)));
            h.remove(0);
            assert_eq!(h.peek_max(), Some((1, 7.0)));
        }
    }

    #[test]
    fn stale_entries_do_not_resurrect() {
        let mut h = heap_mode(LazyMaxHeap::new(&[10.0, 1.0]));
        h.update(0, 0.5);
        h.update(0, 0.7);
        assert_eq!(h.peek_max(), Some((1, 1.0)));
        h.remove(1);
        assert_eq!(h.peek_max(), Some((0, 0.7)));
    }

    #[test]
    fn empty_heap() {
        let mut h = LazyMaxHeap::new(&[]);
        assert_eq!(h.peek_max(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut h = LazyMaxHeap::new(&[1.0, 2.0]);
        assert_eq!(h.peek_max(), Some((1, 2.0)));
        h.reset(&[5.0, 4.0, 3.0]);
        assert_eq!(h.peek_max(), Some((0, 5.0)));
        h.remove(0);
        assert_eq!(h.peek_max(), Some((1, 4.0)));
    }

    #[test]
    fn small_n_cutover_matches_len() {
        assert!(LazyMinHeap::with_len(SMALL_N - 1).small);
        assert!(!LazyMinHeap::with_len(SMALL_N).small);
        let big: Vec<f64> = (0..SMALL_N).map(|i| i as f64).collect();
        assert!(!LazyMaxHeap::new(&big).small);
        // Small mode keeps the heap storage empty.
        let mut h = LazyMaxHeap::new(&[1.0, 2.0]);
        h.update(0, 9.0);
        assert!(h.heap.is_empty());
        assert_eq!(h.peek_max(), Some((0, 9.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_values() {
        let _ = LazyMaxHeap::new(&[f64::NAN]);
    }

    #[test]
    fn infinite_values_are_ordered_not_rejected() {
        // Degenerate platforms can overflow expected times to +∞; the old
        // linear scans handled that, so the heaps must too.
        let mut h = heap_mode(LazyMaxHeap::new(&[1.0, f64::INFINITY, 2.0]));
        assert_eq!(h.peek_max(), Some((1, f64::INFINITY)));
        h.remove(1);
        assert_eq!(h.peek_max(), Some((2, 2.0)));
        let mut m = heap_mode(LazyMinHeap::with_len(3));
        m.update(0, f64::INFINITY);
        m.update(1, 5.0);
        assert_eq!(m.peek_min(), Some((1, 5.0)));
        m.remove(1);
        assert_eq!(m.peek_min(), Some((0, f64::INFINITY)));
    }

    #[test]
    fn min_heap_membership_and_order() {
        for force_heap in [false, true] {
            let mut h = LazyMinHeap::with_len(4);
            if force_heap {
                h = heap_mode(h);
            }
            assert_eq!(h.peek_min(), None);
            h.update(2, 5.0);
            h.update(0, 7.0);
            assert!(h.contains(0) && !h.contains(1));
            assert_eq!(h.peek_min(), Some((2, 5.0)));
            h.update(2, 9.0);
            assert_eq!(h.peek_min(), Some((0, 7.0)));
            h.remove(0);
            assert_eq!(h.peek_min(), Some((2, 9.0)));
            h.remove(2);
            assert_eq!(h.peek_min(), None);
        }
    }

    #[test]
    fn min_heap_ties_break_to_lowest_index() {
        for force_heap in [false, true] {
            let mut h = LazyMinHeap::with_len(3);
            if force_heap {
                h = heap_mode(h);
            }
            h.update(2, 4.0);
            h.update(1, 4.0);
            h.update(0, 4.0);
            assert_eq!(h.peek_min(), Some((0, 4.0)));
            h.remove(0);
            assert_eq!(h.peek_min(), Some((1, 4.0)));
        }
    }

    #[test]
    fn peek_where_skips_and_restores() {
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0, 7.0]);
            if force_heap {
                h = heap_mode(h);
            }
            let mut stash = Vec::new();
            // Session: indices 1 and 3 are filtered out.
            let blocked = [1usize, 3];
            assert_eq!(
                h.peek_where(&mut stash, |i| !blocked.contains(&i)),
                Some((2, 5.0)),
                "force_heap={force_heap}"
            );
            // Repeat query: already-stashed entries stay skipped.
            assert_eq!(h.peek_where(&mut stash, |i| !blocked.contains(&i)), Some((2, 5.0)));
            h.restore(&mut stash);
            assert!(stash.is_empty());
            // After restore, the full queue is intact.
            assert_eq!(h.peek_max(), Some((1, 9.0)));
        }
    }

    #[test]
    fn take_top_adopts_head_then_restore_is_clean() {
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
            if force_heap {
                h = heap_mode(h);
            }
            let mut stash = Vec::new();
            let mut adopted: Vec<usize> = Vec::new();
            // Adopt the two best heads one after the other (the caller's
            // predicate hides already-adopted indices, which is what makes
            // the small-n no-op `take_top` correct).
            for _ in 0..2 {
                let (i, _) = h.peek_where(&mut stash, |i| !adopted.contains(&i)).unwrap();
                h.take_top(&mut stash);
                adopted.push(i);
            }
            assert_eq!(adopted, vec![1, 2]);
            assert_eq!(h.peek_where(&mut stash, |i| !adopted.contains(&i)), Some((0, 3.0)));
            h.restore(&mut stash);
            assert_eq!(h.peek_max(), Some((1, 9.0)));
        }
    }

    #[test]
    fn restored_stale_entries_do_not_resurrect() {
        // An adopted index is recommitted with a new value before restore:
        // the stashed original must not bring the old value back.
        let mut h = heap_mode(LazyMaxHeap::new(&[3.0, 9.0, 5.0]));
        let mut stash = Vec::new();
        let (i, _) = h.peek_where(&mut stash, |_| true).unwrap();
        assert_eq!(i, 1);
        h.take_top(&mut stash);
        h.update(1, 4.0); // commit with a different value
        h.restore(&mut stash);
        assert_eq!(h.peek_max(), Some((2, 5.0)));
        h.remove(2);
        assert_eq!(h.peek_max(), Some((1, 4.0)));
    }

    #[test]
    fn heap_and_scan_agree_on_random_ops() {
        // Reference equivalence: after arbitrary update/remove sequences the
        // heap pick equals the linear-scan pick (value, ties lowest index),
        // in both directions and both modes.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 16usize;
        let mut small = LazyMinHeap::with_len(n);
        let mut big = heap_mode(LazyMinHeap::with_len(n));
        let mut vals: Vec<Option<f64>> = vec![None; n];
        for _ in 0..2000 {
            let idx = (next() as usize) % n;
            if next() % 4 == 0 {
                small.remove(idx);
                big.remove(idx);
                vals[idx] = None;
            } else {
                let v = (next() % 1000) as f64;
                small.update(idx, v);
                big.update(idx, v);
                vals[idx] = Some(v);
            }
            let scan = vals
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.map(|v| (i, v)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            assert_eq!(small.peek_min(), scan);
            assert_eq!(big.peek_min(), scan);
        }
    }

    #[test]
    fn peek_valid_repairs_stale_entries() {
        // Keys derive from an external array; the queue only learns of
        // changes at query time.
        let mut truth: Vec<Option<f64>> = vec![Some(5.0), Some(2.0), Some(8.0)];
        let mut h = heap_mode(LazyMinHeap::with_len(3));
        for (i, v) in truth.iter().enumerate() {
            h.update(i, v.unwrap());
        }
        assert_eq!(h.peek_valid(|i| truth[i]), Some((1, 2.0)));
        // The min's true value rose and the old min index disappeared.
        truth[1] = Some(9.0);
        truth[0] = None;
        assert_eq!(h.peek_valid(|i| truth[i]), Some((2, 8.0)));
        // Repairs are persistent: a plain peek now agrees.
        assert_eq!(h.peek_min(), Some((2, 8.0)));
        truth[2] = None;
        truth[1] = None;
        assert_eq!(h.peek_valid(|i| truth[i]), None);
    }

    #[test]
    fn filtered_sessions_agree_with_filtered_scan() {
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 24usize;
        for force_heap in [false, true] {
            let mut h = LazyMaxHeap::with_len(n);
            if force_heap {
                h = heap_mode(h);
            }
            let mut vals: Vec<Option<f64>> = vec![None; n];
            for round in 0..200 {
                let idx = (next() as usize) % n;
                let v = (next() % 500) as f64;
                h.update(idx, v);
                vals[idx] = Some(v);
                // A session with a fixed pseudo-random filter.
                let mask = next();
                let keep = |i: usize| mask & (1 << (i % 48)) != 0;
                let mut stash = Vec::new();
                let got = h.peek_where(&mut stash, keep);
                let want = vals
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.map(|v| (i, v)))
                    .filter(|&(i, _)| keep(i))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)));
                assert_eq!(got, want, "round={round} force_heap={force_heap}");
                h.restore(&mut stash);
            }
        }
    }
}
