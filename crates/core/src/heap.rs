//! A lazy-deletion max-heap over `(value, index)` pairs.
//!
//! The greedy loops of Algorithms 1, 3 and 5 repeatedly need "the task with
//! the longest expected finish time", with values that change as processors
//! are granted. A `BinaryHeap` with stale-entry skipping gives `O(log n)`
//! per operation: updates push a fresh entry, and `peek_max` discards
//! entries whose value no longer matches the authoritative `current` array.
//!
//! Ties break toward the lowest index, matching the deterministic list
//! order used throughout (`head(L)` on equal times is the earliest task).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
struct Entry {
    val: f64,
    idx: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val && self.idx == other.idx
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max by value; ties prefer the lowest index (so reverse idx).
        self.val
            .partial_cmp(&other.val)
            .expect("heap values are finite")
            .then_with(|| other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap with O(log n) updates via lazy deletion.
#[derive(Debug, Clone)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<Entry>,
    current: Vec<f64>,
}

impl LazyMaxHeap {
    /// Builds a heap over `values` (index `i` carries `values[i]`).
    ///
    /// # Panics
    /// Panics if any value is not finite.
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "values must be finite");
        let heap = values.iter().enumerate().map(|(idx, &val)| Entry { val, idx }).collect();
        Self { heap, current: values.to_vec() }
    }

    /// Sets `idx`'s value and reinserts it.
    ///
    /// # Panics
    /// Panics if `val` is not finite.
    pub fn update(&mut self, idx: usize, val: f64) {
        assert!(val.is_finite(), "values must be finite");
        self.current[idx] = val;
        self.heap.push(Entry { val, idx });
    }

    /// Removes `idx` from consideration.
    pub fn remove(&mut self, idx: usize) {
        self.current[idx] = f64::NAN; // never matches a heap entry again
    }

    /// Returns the `(index, value)` with the maximum value without removing
    /// it, discarding stale entries along the way. `None` when empty.
    pub fn peek_max(&mut self) -> Option<(usize, f64)> {
        while let Some(top) = self.heap.peek() {
            if self.current[top.idx] == top.val {
                return Some((top.idx, top.val));
            }
            self.heap.pop();
        }
        None
    }

    /// Current value of `idx` (NaN if removed).
    #[must_use]
    pub fn value(&self, idx: usize) -> f64 {
        self.current[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_returns_max() {
        let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
        assert_eq!(h.peek_max(), Some((1, 9.0)));
        // Peek does not remove.
        assert_eq!(h.peek_max(), Some((1, 9.0)));
    }

    #[test]
    fn update_moves_entries() {
        let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
        h.update(1, 1.0);
        assert_eq!(h.peek_max(), Some((2, 5.0)));
        h.update(0, 50.0);
        assert_eq!(h.peek_max(), Some((0, 50.0)));
    }

    #[test]
    fn remove_skips_entries() {
        let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
        h.remove(1);
        assert_eq!(h.peek_max(), Some((2, 5.0)));
        h.remove(2);
        assert_eq!(h.peek_max(), Some((0, 3.0)));
        h.remove(0);
        assert_eq!(h.peek_max(), None);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut h = LazyMaxHeap::new(&[7.0, 7.0, 7.0]);
        assert_eq!(h.peek_max(), Some((0, 7.0)));
        h.remove(0);
        assert_eq!(h.peek_max(), Some((1, 7.0)));
    }

    #[test]
    fn stale_entries_do_not_resurrect() {
        let mut h = LazyMaxHeap::new(&[10.0, 1.0]);
        h.update(0, 0.5);
        h.update(0, 0.7);
        assert_eq!(h.peek_max(), Some((1, 1.0)));
        h.remove(1);
        assert_eq!(h.peek_max(), Some((0, 0.7)));
    }

    #[test]
    fn empty_heap() {
        let mut h = LazyMaxHeap::new(&[]);
        assert_eq!(h.peek_max(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        let _ = LazyMaxHeap::new(&[f64::NAN]);
    }
}
