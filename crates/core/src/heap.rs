//! Lazy-deletion heaps over `(value, index)` pairs.
//!
//! The greedy loops of Algorithms 1, 3 and 5 repeatedly need "the task with
//! the longest expected finish time", and the engines' event loops need
//! "the active task with the earliest end", with values that change as
//! processors are granted or events land. A `BinaryHeap` with stale-entry
//! skipping gives `O(log n)` per operation: updates push a fresh entry, and
//! `peek` discards entries whose value no longer matches the authoritative
//! `current` array.
//!
//! Two siblings share the machinery: [`LazyMaxHeap`] (heuristic planning
//! lists) and [`LazyMinHeap`] (the engines' end-event queues). Ties break
//! toward the lowest index in both, matching the deterministic list order
//! used throughout (`head(L)` on equal times is the earliest task) — so the
//! heaps return bit-identical picks to the linear scans they replace.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
struct MaxEntry {
    val: f64,
    idx: usize,
}

impl PartialEq for MaxEntry {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val && self.idx == other.idx
    }
}
impl Eq for MaxEntry {}

impl Ord for MaxEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max by value; ties prefer the lowest index (so reverse idx).
        self.val
            .partial_cmp(&other.val)
            .expect("heap values are never NaN")
            .then_with(|| other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for MaxEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-heap with O(log n) updates via lazy deletion.
#[derive(Debug, Clone, Default)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<MaxEntry>,
    current: Vec<f64>,
}

impl LazyMaxHeap {
    /// Builds a heap over `values` (index `i` carries `values[i]`).
    ///
    /// # Panics
    /// Panics if any value is NaN.
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        let mut h = Self::default();
        h.reset(values);
        h
    }

    /// Reinitializes the heap over `values`, retaining allocations — the
    /// zero-alloc path used by policy scratch buffers.
    ///
    /// Infinities are allowed (degenerate platforms can produce infinite
    /// expected times; they flowed through the pre-heap linear scans too);
    /// NaN is rejected — it is the lazy-deletion sentinel.
    ///
    /// # Panics
    /// Panics if any value is NaN.
    pub fn reset(&mut self, values: &[f64]) {
        assert!(values.iter().all(|v| !v.is_nan()), "heap values must not be NaN");
        self.heap.clear();
        self.heap.extend(values.iter().enumerate().map(|(idx, &val)| MaxEntry { val, idx }));
        self.current.clear();
        self.current.extend_from_slice(values);
    }

    /// Sets `idx`'s value and reinserts it.
    ///
    /// # Panics
    /// Panics if `val` is NaN.
    pub fn update(&mut self, idx: usize, val: f64) {
        assert!(!val.is_nan(), "heap values must not be NaN");
        self.current[idx] = val;
        self.heap.push(MaxEntry { val, idx });
    }

    /// Removes `idx` from consideration.
    pub fn remove(&mut self, idx: usize) {
        self.current[idx] = f64::NAN; // never matches a heap entry again
    }

    /// Returns the `(index, value)` with the maximum value without removing
    /// it, discarding stale entries along the way. `None` when empty.
    pub fn peek_max(&mut self) -> Option<(usize, f64)> {
        while let Some(top) = self.heap.peek() {
            if self.current[top.idx] == top.val {
                return Some((top.idx, top.val));
            }
            self.heap.pop();
        }
        None
    }

    /// Current value of `idx` (NaN if removed).
    #[must_use]
    pub fn value(&self, idx: usize) -> f64 {
        self.current[idx]
    }
}

#[derive(Debug, Clone, Copy)]
struct MinEntry {
    val: f64,
    idx: usize,
}

impl PartialEq for MinEntry {
    fn eq(&self, other: &Self) -> bool {
        self.val == other.val && self.idx == other.idx
    }
}
impl Eq for MinEntry {}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` pops the greatest entry; we want the smallest value
        // first, ties toward the lowest index — so reverse the value order
        // and make the lower index compare greater.
        other
            .val
            .partial_cmp(&self.val)
            .expect("heap values are never NaN")
            .then_with(|| other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap sibling of [`LazyMaxHeap`], with *membership*: indices start
/// absent and only participate after their first [`LazyMinHeap::update`].
///
/// This is the engines' end-event queue: a task enters when its expected
/// finish time is first set (static engine: at start; online engine: when
/// the job is admitted) and leaves on [`LazyMinHeap::remove`] at
/// completion.
#[derive(Debug, Clone, Default)]
pub struct LazyMinHeap {
    heap: BinaryHeap<MinEntry>,
    /// Authoritative values; NaN marks "absent".
    current: Vec<f64>,
}

impl LazyMinHeap {
    /// Creates a heap for indices `0..n`, all initially absent.
    #[must_use]
    pub fn with_len(n: usize) -> Self {
        Self { heap: BinaryHeap::new(), current: vec![f64::NAN; n] }
    }

    /// Sets `idx`'s value (inserting it on first touch).
    ///
    /// Infinities are allowed (a degenerate platform can make an expected
    /// finish time overflow to +∞); NaN is rejected — it is the
    /// lazy-deletion sentinel.
    ///
    /// # Panics
    /// Panics if `val` is NaN.
    pub fn update(&mut self, idx: usize, val: f64) {
        assert!(!val.is_nan(), "heap values must not be NaN");
        self.current[idx] = val;
        self.heap.push(MinEntry { val, idx });
    }

    /// Removes `idx` from consideration.
    pub fn remove(&mut self, idx: usize) {
        self.current[idx] = f64::NAN;
    }

    /// Whether `idx` currently participates.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        !self.current[idx].is_nan()
    }

    /// Returns the `(index, value)` with the minimum value without removing
    /// it, discarding stale entries along the way. `None` when empty.
    pub fn peek_min(&mut self) -> Option<(usize, f64)> {
        while let Some(top) = self.heap.peek() {
            if self.current[top.idx] == top.val {
                return Some((top.idx, top.val));
            }
            self.heap.pop();
        }
        None
    }

    /// Current value of `idx` (NaN if absent).
    #[must_use]
    pub fn value(&self, idx: usize) -> f64 {
        self.current[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_returns_max() {
        let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
        assert_eq!(h.peek_max(), Some((1, 9.0)));
        // Peek does not remove.
        assert_eq!(h.peek_max(), Some((1, 9.0)));
    }

    #[test]
    fn update_moves_entries() {
        let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
        h.update(1, 1.0);
        assert_eq!(h.peek_max(), Some((2, 5.0)));
        h.update(0, 50.0);
        assert_eq!(h.peek_max(), Some((0, 50.0)));
    }

    #[test]
    fn remove_skips_entries() {
        let mut h = LazyMaxHeap::new(&[3.0, 9.0, 5.0]);
        h.remove(1);
        assert_eq!(h.peek_max(), Some((2, 5.0)));
        h.remove(2);
        assert_eq!(h.peek_max(), Some((0, 3.0)));
        h.remove(0);
        assert_eq!(h.peek_max(), None);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut h = LazyMaxHeap::new(&[7.0, 7.0, 7.0]);
        assert_eq!(h.peek_max(), Some((0, 7.0)));
        h.remove(0);
        assert_eq!(h.peek_max(), Some((1, 7.0)));
    }

    #[test]
    fn stale_entries_do_not_resurrect() {
        let mut h = LazyMaxHeap::new(&[10.0, 1.0]);
        h.update(0, 0.5);
        h.update(0, 0.7);
        assert_eq!(h.peek_max(), Some((1, 1.0)));
        h.remove(1);
        assert_eq!(h.peek_max(), Some((0, 0.7)));
    }

    #[test]
    fn empty_heap() {
        let mut h = LazyMaxHeap::new(&[]);
        assert_eq!(h.peek_max(), None);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut h = LazyMaxHeap::new(&[1.0, 2.0]);
        assert_eq!(h.peek_max(), Some((1, 2.0)));
        h.reset(&[5.0, 4.0, 3.0]);
        assert_eq!(h.peek_max(), Some((0, 5.0)));
        h.remove(0);
        assert_eq!(h.peek_max(), Some((1, 4.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_values() {
        let _ = LazyMaxHeap::new(&[f64::NAN]);
    }

    #[test]
    fn infinite_values_are_ordered_not_rejected() {
        // Degenerate platforms can overflow expected times to +∞; the old
        // linear scans handled that, so the heaps must too.
        let mut h = LazyMaxHeap::new(&[1.0, f64::INFINITY, 2.0]);
        assert_eq!(h.peek_max(), Some((1, f64::INFINITY)));
        h.remove(1);
        assert_eq!(h.peek_max(), Some((2, 2.0)));
        let mut m = LazyMinHeap::with_len(3);
        m.update(0, f64::INFINITY);
        m.update(1, 5.0);
        assert_eq!(m.peek_min(), Some((1, 5.0)));
        m.remove(1);
        assert_eq!(m.peek_min(), Some((0, f64::INFINITY)));
    }

    #[test]
    fn min_heap_membership_and_order() {
        let mut h = LazyMinHeap::with_len(4);
        assert_eq!(h.peek_min(), None);
        h.update(2, 5.0);
        h.update(0, 7.0);
        assert!(h.contains(0) && !h.contains(1));
        assert_eq!(h.peek_min(), Some((2, 5.0)));
        h.update(2, 9.0);
        assert_eq!(h.peek_min(), Some((0, 7.0)));
        h.remove(0);
        assert_eq!(h.peek_min(), Some((2, 9.0)));
        h.remove(2);
        assert_eq!(h.peek_min(), None);
    }

    #[test]
    fn min_heap_ties_break_to_lowest_index() {
        let mut h = LazyMinHeap::with_len(3);
        h.update(2, 4.0);
        h.update(1, 4.0);
        h.update(0, 4.0);
        assert_eq!(h.peek_min(), Some((0, 4.0)));
        h.remove(0);
        assert_eq!(h.peek_min(), Some((1, 4.0)));
    }

    #[test]
    fn min_heap_matches_linear_scan_on_random_ops() {
        // Reference equivalence: after arbitrary update/remove sequences the
        // heap pick equals the linear-scan pick (value, ties lowest index).
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 16usize;
        let mut h = LazyMinHeap::with_len(n);
        let mut vals: Vec<Option<f64>> = vec![None; n];
        for _ in 0..2000 {
            let idx = (next() as usize) % n;
            if next() % 4 == 0 {
                h.remove(idx);
                vals[idx] = None;
            } else {
                let v = (next() % 1000) as f64;
                h.update(idx, v);
                vals[idx] = Some(v);
            }
            let scan = vals
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.map(|v| (i, v)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            assert_eq!(h.peek_min(), scan);
        }
    }
}
