//! Brute-force optimal solvers for small instances.
//!
//! Two solvers:
//!
//! * [`optimal_no_redistribution`] — exhaustive search over all even
//!   allocations, the ground truth for Algorithm 1 (Theorem 1 says the
//!   greedy is optimal; tests verify it against this);
//! * [`optimal_with_end_redistribution`] — exhaustive search over schedules
//!   that may redistribute processors whenever a task completes (the
//!   NP-complete problem of Theorem 2, §4.2), optionally with
//!   redistribution costs. Exponential; intended for `n ≤ 4` and small `p`,
//!   to measure how far the heuristics sit from optimal.
//!
//! Both solvers work on fault-free or fault-aware [`TimeCalc`]s (the latter
//! optimizes the *expected* makespan at `α = 1`).

use redistrib_model::TimeCalc;

use crate::error::ScheduleError;

/// Exhaustive optimum of the no-redistribution problem: even allocations
/// `σ(i) ≥ 2`, `Σσ ≤ p`, minimizing `max_i remaining(i, σ(i), 1)`.
///
/// Returns `(sigma, makespan)`.
///
/// # Errors
/// [`ScheduleError::InsufficientProcessors`] if `p < 2n`.
///
/// # Panics
/// Panics if the instance is too large to enumerate (`n > 8`).
pub fn optimal_no_redistribution(
    calc: &mut TimeCalc,
    p: u32,
) -> Result<(Vec<u32>, f64), ScheduleError> {
    let n = calc.num_tasks();
    assert!(n <= 8, "exhaustive search limited to 8 tasks, got {n}");
    if p < 2 * n as u32 {
        return Err(ScheduleError::InsufficientProcessors {
            needed: 2 * n as u32,
            available: p,
        });
    }

    let mut sigma = vec![2u32; n];
    let mut best_sigma = sigma.clone();
    let mut best = f64::INFINITY;
    search_alloc(calc, p, 0, &mut sigma, 0.0, &mut best, &mut best_sigma);
    Ok((best_sigma, best))
}

/// Depth-first enumeration of even allocations with a running max.
fn search_alloc(
    calc: &mut TimeCalc,
    p: u32,
    i: usize,
    sigma: &mut Vec<u32>,
    current_max: f64,
    best: &mut f64,
    best_sigma: &mut Vec<u32>,
) {
    let n = sigma.len();
    if i == n {
        if current_max < *best {
            *best = current_max;
            best_sigma.clone_from(sigma);
        }
        return;
    }
    let used: u32 = sigma[..i].iter().sum();
    let reserve = 2 * (n - i - 1) as u32; // two procs for each later task
    let max_here = p - used - reserve;
    let mut s = 2;
    while s <= max_here {
        sigma[i] = s;
        let t = calc.remaining(i, s, 1.0);
        let new_max = current_max.max(t);
        // Prune: the makespan only grows along the path.
        if new_max < *best {
            search_alloc(calc, p, i + 1, sigma, new_max, best, best_sigma);
        }
        s += 2;
    }
    sigma[i] = 2;
}

/// One redistribution decision point in an optimal end-redistribution
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSchedule {
    /// Initial allocation.
    pub initial: Vec<u32>,
    /// Optimal makespan.
    pub makespan: f64,
}

/// Exhaustive optimum when processors may be redistributed *each time a task
/// completes* (fault-free; the Theorem 2 setting). `with_costs` charges
/// `RC^{j→k}` per move (Eq. 9) plus the post-redistribution checkpoint when
/// the calculator is fault-aware.
///
/// The search enumerates initial even allocations and, recursively, all even
/// reallocations of the remaining tasks at each completion time. Complexity
/// is super-exponential — keep `n ≤ 3` and `p ≤ 12`.
///
/// # Errors
/// [`ScheduleError::InsufficientProcessors`] if `p < 2n`.
///
/// # Panics
/// Panics if the instance is too large (`n > 3` or `p > 16`).
pub fn optimal_with_end_redistribution(
    calc: &mut TimeCalc,
    p: u32,
    with_costs: bool,
) -> Result<ExactSchedule, ScheduleError> {
    let n = calc.num_tasks();
    assert!(n <= 3 && p <= 16, "exhaustive redistribution search limited to n ≤ 3, p ≤ 16");
    if p < 2 * n as u32 {
        return Err(ScheduleError::InsufficientProcessors {
            needed: 2 * n as u32,
            available: p,
        });
    }

    // Enumerate initial allocations; for each, simulate recursively.
    let mut best = f64::INFINITY;
    let mut best_initial = vec![2u32; n];
    let mut allocations = Vec::new();
    enumerate_even_allocations(n, p, &mut vec![2u32; n], 0, &mut allocations);
    for alloc in &allocations {
        // State per task: (alpha, sigma, anchor_time).
        let state: Vec<TaskState> =
            alloc.iter().map(|&s| TaskState { alpha: 1.0, sigma: s, anchor: 0.0 }).collect();
        let mk = best_completion(calc, p, state, 0.0, with_costs, best);
        if mk < best {
            best = mk;
            best_initial.clone_from_slice(alloc);
        }
    }
    Ok(ExactSchedule { initial: best_initial, makespan: best })
}

#[derive(Debug, Clone, Copy)]
struct TaskState {
    alpha: f64,
    sigma: u32,
    anchor: f64,
}

/// Minimal completion time from a state where every remaining task `i` has
/// `alpha` work left, `sigma` processors, and resumed at `anchor`.
fn best_completion(
    calc: &mut TimeCalc,
    p: u32,
    state: Vec<TaskState>,
    now: f64,
    with_costs: bool,
    upper_bound: f64,
) -> f64 {
    // Finish times with the current allocation.
    let finish: Vec<(usize, f64)> = state
        .iter()
        .enumerate()
        .filter(|(_, s)| s.alpha > 0.0)
        .map(|(i, s)| (i, s.anchor + calc.remaining(i, s.sigma, s.alpha)))
        .collect();
    if finish.is_empty() {
        return now;
    }
    let (first, t_first) = finish
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    if finish.len() == 1 {
        return t_first;
    }
    if t_first >= upper_bound {
        return f64::INFINITY; // prune: already no better
    }

    // Task `first` completes at t_first; its processors free up. Enumerate
    // all even top-ups of the remaining tasks.
    let remaining: Vec<usize> =
        finish.iter().map(|&(i, _)| i).filter(|&i| i != first).collect();
    let used: u32 = remaining.iter().map(|&i| state[i].sigma).sum();
    let free = p - used;

    let mut best = f64::INFINITY;
    let mut extras = vec![0u32; remaining.len()];
    enumerate_extras(free, 0, &mut extras, &mut |extras: &[u32]| {
        let mut next = Vec::with_capacity(remaining.len());
        let mut padded = vec![TaskState { alpha: 0.0, sigma: 0, anchor: 0.0 }; state.len()];
        for (slot, &i) in remaining.iter().enumerate() {
            let s = state[i];
            let new_sigma = s.sigma + extras[slot];
            // Work progressed from the task's anchor to t_first at its old
            // allocation (fault-free accounting, as in §3.3.1).
            let elapsed = t_first - s.anchor;
            let progress = elapsed / calc.fault_free_time(i, s.sigma);
            let alpha_t = (s.alpha - progress).max(0.0);
            let (anchor, alpha) = if new_sigma == s.sigma {
                (s.anchor, s.alpha) // untouched: keeps running
            } else {
                let cost = if with_costs {
                    calc.rc_cost(i, s.sigma, new_sigma) + calc.checkpoint_cost(i, new_sigma)
                } else {
                    0.0
                };
                (t_first + cost, alpha_t)
            };
            padded[i] = TaskState { alpha, sigma: new_sigma, anchor };
            next.push(i);
        }
        let mk = best_completion(calc, p, padded, t_first, with_costs, best.min(upper_bound));
        if mk < best {
            best = mk;
        }
    });
    best
}

/// Enumerates all even allocations `σ(i) ≥ 2` with `Σσ ≤ p`.
fn enumerate_even_allocations(
    n: usize,
    p: u32,
    sigma: &mut Vec<u32>,
    i: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if i == n {
        out.push(sigma.clone());
        return;
    }
    let used: u32 = sigma[..i].iter().sum();
    let reserve = 2 * (n - i - 1) as u32;
    let mut s = 2;
    while used + s + reserve <= p {
        sigma[i] = s;
        enumerate_even_allocations(n, p, sigma, i + 1, out);
        s += 2;
    }
    sigma[i] = 2;
}

/// Enumerates all even distributions of at most `free` processors over the
/// slots (including giving nothing).
fn enumerate_extras(free: u32, slot: usize, extras: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
    if slot == extras.len() {
        f(extras);
        return;
    }
    let used: u32 = extras[..slot].iter().sum();
    let mut e = 0;
    while used + e <= free {
        extras[slot] = e;
        enumerate_extras(free, slot + 1, extras, f);
        e += 2;
    }
    extras[slot] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_schedule;
    use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
    use redistrib_sim::units;
    use std::sync::Arc;

    fn calc(sizes: &[f64], p: u32, fault_aware: bool) -> TimeCalc {
        let w = Workload::new(
            sizes.iter().map(|&m| TaskSpec::new(m)).collect(),
            Arc::new(PaperModel::default()),
        );
        let platform = Platform::with_mtbf(p, units::years(100.0));
        if fault_aware {
            TimeCalc::new(w, platform)
        } else {
            TimeCalc::fault_free(w, platform)
        }
    }

    #[test]
    fn brute_force_matches_greedy_fault_free() {
        for (sizes, p) in [
            (vec![2.0e6, 1.5e6], 10u32),
            (vec![2.0e6, 1.5e6, 1.8e6], 12),
            (vec![2.4e6, 1.5e6, 1.9e6, 2.1e6], 16),
        ] {
            let mut c = calc(&sizes, p, false);
            let sigma = optimal_schedule(&c, p).unwrap();
            let greedy_mk = sigma
                .iter()
                .enumerate()
                .map(|(i, &s)| c.remaining(i, s, 1.0))
                .fold(0.0, f64::max);
            let (_, exact_mk) = optimal_no_redistribution(&mut c, p).unwrap();
            assert!(
                (greedy_mk - exact_mk).abs() / exact_mk < 1e-9,
                "p={p}: greedy {greedy_mk} vs exact {exact_mk}"
            );
        }
    }

    #[test]
    fn brute_force_matches_greedy_fault_aware() {
        // Theorem 1 extends to the expected times t^R.
        let sizes = vec![2.2e6, 1.6e6, 1.9e6];
        let p = 14;
        let mut c = calc(&sizes, p, true);
        let sigma = optimal_schedule(&c, p).unwrap();
        let greedy_mk =
            sigma.iter().enumerate().map(|(i, &s)| c.remaining(i, s, 1.0)).fold(0.0, f64::max);
        let (_, exact_mk) = optimal_no_redistribution(&mut c, p).unwrap();
        assert!((greedy_mk - exact_mk).abs() / exact_mk < 1e-9);
    }

    #[test]
    fn redistribution_optimum_no_worse_than_static() {
        let sizes = vec![2.0e6, 1.4e6];
        let p = 8;
        let mut c = calc(&sizes, p, false);
        let (_, static_mk) = optimal_no_redistribution(&mut c, p).unwrap();
        let dynamic = optimal_with_end_redistribution(&mut c, p, false).unwrap();
        assert!(
            dynamic.makespan <= static_mk * (1.0 + 1e-9),
            "dynamic {} vs static {static_mk}",
            dynamic.makespan
        );
    }

    #[test]
    fn free_redistribution_beats_static_on_skewed_pack() {
        // One long and one short task: once the short one ends, the long one
        // should absorb its processors, strictly beating any static split.
        let sizes = vec![2.4e6, 1.5e6];
        let p = 6;
        let mut c = calc(&sizes, p, false);
        let (_, static_mk) = optimal_no_redistribution(&mut c, p).unwrap();
        let dynamic = optimal_with_end_redistribution(&mut c, p, false).unwrap();
        assert!(
            dynamic.makespan < static_mk * 0.999,
            "dynamic {} should clearly beat static {static_mk}",
            dynamic.makespan
        );
    }

    #[test]
    fn costs_only_increase_optimal_makespan() {
        let sizes = vec![2.0e6, 1.5e6];
        let p = 8;
        let mut c = calc(&sizes, p, false);
        let free = optimal_with_end_redistribution(&mut c, p, false).unwrap();
        let costed = optimal_with_end_redistribution(&mut c, p, true).unwrap();
        assert!(costed.makespan >= free.makespan * (1.0 - 1e-12));
    }

    #[test]
    fn single_task_trivial() {
        let mut c = calc(&[2.0e6], 6, false);
        let (sigma, mk) = optimal_no_redistribution(&mut c, 6).unwrap();
        assert_eq!(sigma, vec![6]);
        assert!((mk - c.remaining(0, 6, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn insufficient_processors() {
        let mut c = calc(&[2.0e6, 2.0e6], 2, false);
        assert!(optimal_no_redistribution(&mut c, 2).is_err());
        assert!(optimal_with_end_redistribution(&mut c, 2, false).is_err());
    }
}
