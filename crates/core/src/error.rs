//! Error types of the scheduling engine.

use std::fmt;

/// Errors raised while building or executing a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The platform is too small: buddy checkpointing requires at least two
    /// processors per task.
    InsufficientProcessors {
        /// Minimum processors required (`2n`).
        needed: u32,
        /// Processors available (`p`).
        available: u32,
    },
    /// The engine processed more events than its safety limit — indicative
    /// of a configuration where failures arrive faster than recoveries
    /// complete.
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A session snapshot failed validation on restore (inconsistent
    /// lengths, processors owned twice, an impossible cursor, …).
    CorruptSnapshot {
        /// What failed to validate.
        reason: &'static str,
    },
    /// A job was submitted into a running session with a release time
    /// before the session's current simulation time — admitting it would
    /// rewrite history the event loop has already committed.
    ReleaseInPast {
        /// The offending release time.
        release: f64,
        /// The session's current time.
        now: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScheduleError::InsufficientProcessors { needed, available } => write!(
                f,
                "insufficient processors: the pack needs at least {needed} \
                 (two per task, buddy checkpointing), platform has {available}"
            ),
            ScheduleError::EventLimitExceeded { limit } => {
                write!(f, "simulation exceeded the event safety limit ({limit})")
            }
            ScheduleError::CorruptSnapshot { reason } => {
                write!(f, "corrupt session snapshot: {reason}")
            }
            ScheduleError::ReleaseInPast { release, now } => write!(
                f,
                "job release time {release} precedes the session's current time {now}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ScheduleError::InsufficientProcessors { needed: 200, available: 64 };
        let msg = e.to_string();
        assert!(msg.contains("200") && msg.contains("64"));
        let e = ScheduleError::EventLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
