//! Property tests of the incremental policy engine: after *any* event
//! sequence — randomized workloads, platforms, fault seeds and heuristic
//! combinations — the incremental live-view path produces byte-identical
//! outcomes (event logs, makespans, counters) to the from-scratch
//! reference path, for all four policies.
//!
//! (In debug builds every incremental decision inside these runs is
//! additionally cross-checked on a cloned state by the policies
//! themselves; this suite asserts the end-to-end equality on top.)

use std::sync::Arc;

use proptest::prelude::*;

use redistrib_core::{run, EngineConfig, Heuristic};
use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
use redistrib_sim::rng::Xoshiro256;
use redistrib_sim::units;

/// Every policy entry point: EndLocal, EndGreedy, ShortestTasksFirst and
/// IteratedGreedy all appear in at least one combination.
const HEURISTICS: [Heuristic; 5] = [
    Heuristic::IteratedGreedyEndGreedy,
    Heuristic::IteratedGreedyEndLocal,
    Heuristic::ShortestTasksFirstEndGreedy,
    Heuristic::ShortestTasksFirstEndLocal,
    Heuristic::EndLocalOnly,
];

fn workload(n: usize, seed: u64, identical_sizes: bool) -> Workload {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let tasks = (0..n)
        .map(|_| {
            let m = if identical_sizes { 2.0e6 } else { rng.uniform(1.5e6, 2.5e6) };
            TaskSpec::new(m)
        })
        .collect();
    Workload::new(tasks, Arc::new(PaperModel::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-engine equivalence: the incremental and reference policy paths
    /// replay the same fault stream into identical traces. Identical task
    /// sizes are included to exercise exact finish-time ties.
    #[test]
    fn incremental_equals_reference(
        seed in any::<u64>(),
        n in 2..9usize,
        extra_pairs in 0..10u32,
        mtbf_years in 2.0..12.0f64,
        h_idx in 0..HEURISTICS.len(),
        identical_sizes in any::<bool>(),
    ) {
        let p = 2 * n as u32 + 2 * extra_pairs;
        let platform = Platform::with_mtbf(p, units::years(mtbf_years));
        let h = HEURISTICS[h_idx];
        let base = EngineConfig::with_faults(seed ^ 0x14C2, platform.proc_mtbf).recording();

        let calc_a = TimeCalc::new(workload(n, seed, identical_sizes), platform);
        let a = run(&calc_a, &*h.end_policy(), &*h.fault_policy(), &base).unwrap();

        let reference = EngineConfig { reference_policies: true, ..base };
        let calc_b = TimeCalc::new(workload(n, seed, identical_sizes), platform);
        let b = run(&calc_b, &*h.end_policy(), &*h.fault_policy(), &reference).unwrap();

        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "makespan differs");
        prop_assert_eq!(a.handled_faults, b.handled_faults);
        prop_assert_eq!(a.discarded_faults, b.discarded_faults);
        prop_assert_eq!(a.redistributions, b.redistributions);
        prop_assert_eq!(a.initial_allocation, b.initial_allocation);
        prop_assert_eq!(a.trace.to_csv(), b.trace.to_csv(), "event logs diverge");
    }
}
