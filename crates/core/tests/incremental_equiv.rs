//! Property tests of the incremental policy engine: after *any* event
//! sequence — randomized workloads, platforms, fault seeds and heuristic
//! combinations — the incremental live-view path produces byte-identical
//! outcomes (event logs, makespans, counters) to the from-scratch
//! reference path, for all four policies.
//!
//! (In debug builds every incremental decision inside these runs is
//! additionally cross-checked on a cloned state by the policies
//! themselves; this suite asserts the end-to-end equality on top.)

use std::sync::Arc;

use proptest::prelude::*;

use redistrib_core::{run, EngineConfig, Heuristic};
use redistrib_model::{PaperModel, Platform, TaskSpec, TimeCalc, Workload};
use redistrib_sim::rng::Xoshiro256;
use redistrib_sim::units;

/// Every policy entry point: EndLocal, EndGreedy, ShortestTasksFirst and
/// IteratedGreedy all appear in at least one combination.
const HEURISTICS: [Heuristic; 5] = [
    Heuristic::IteratedGreedyEndGreedy,
    Heuristic::IteratedGreedyEndLocal,
    Heuristic::ShortestTasksFirstEndGreedy,
    Heuristic::ShortestTasksFirstEndLocal,
    Heuristic::EndLocalOnly,
];

fn workload(n: usize, seed: u64, identical_sizes: bool) -> Workload {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let tasks = (0..n)
        .map(|_| {
            let m = if identical_sizes { 2.0e6 } else { rng.uniform(1.5e6, 2.5e6) };
            TaskSpec::new(m)
        })
        .collect();
    Workload::new(tasks, Arc::new(PaperModel::default()))
}

/// Runs one heuristic through the incremental live-view path and the
/// from-scratch reference path on the same stream, asserting byte-equal
/// outcomes.
fn assert_incremental_equals_reference(
    seed: u64,
    n: usize,
    p: u32,
    mtbf_years: f64,
    h: Heuristic,
    identical_sizes: bool,
) -> Result<(), String> {
    let platform = Platform::with_mtbf(p, units::years(mtbf_years));
    let base = EngineConfig::with_faults(seed ^ 0x14C2, platform.proc_mtbf).recording();

    let calc_a = TimeCalc::new(workload(n, seed, identical_sizes), platform);
    let a = run(&calc_a, &*h.end_policy(), &*h.fault_policy(), &base).unwrap();

    let reference = EngineConfig { reference_policies: true, ..base };
    let calc_b = TimeCalc::new(workload(n, seed, identical_sizes), platform);
    let b = run(&calc_b, &*h.end_policy(), &*h.fault_policy(), &reference).unwrap();

    prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "makespan differs");
    prop_assert_eq!(a.handled_faults, b.handled_faults);
    prop_assert_eq!(a.discarded_faults, b.discarded_faults);
    prop_assert_eq!(a.redistributions, b.redistributions);
    prop_assert_eq!(a.initial_allocation, b.initial_allocation);
    prop_assert_eq!(a.trace.to_csv(), b.trace.to_csv(), "event logs diverge");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full-engine equivalence: the incremental and reference policy paths
    /// replay the same fault stream into identical traces. Identical task
    /// sizes are included to exercise exact finish-time ties.
    #[test]
    fn incremental_equals_reference(
        seed in any::<u64>(),
        n in 2..9usize,
        extra_pairs in 0..10u32,
        mtbf_years in 2.0..12.0f64,
        h_idx in 0..HEURISTICS.len(),
        identical_sizes in any::<bool>(),
    ) {
        let p = 2 * n as u32 + 2 * extra_pairs;
        assert_incremental_equals_reference(
            seed, n, p, mtbf_years, HEURISTICS[h_idx], identical_sizes,
        )?;
    }

    /// Warm-start greedy ≡ reference greedy under fault/completion storms:
    /// a short MTBF interleaves rollbacks, recovery-window completions and
    /// greedy rebuilds densely, so the drain-phase warm starts, the reset
    /// fallbacks and the persistent floor queue's maintenance are all
    /// exercised within one run — end-to-end trace equality on top of the
    /// per-decision debug cross-checks.
    #[test]
    fn warm_start_greedy_equals_reference_in_storms(
        seed in any::<u64>(),
        n in 2..8usize,
        extra_pairs in 0..8u32,
        mtbf_years in 0.5..3.0f64,
        greedy_idx in 0..3usize,
        identical_sizes in any::<bool>(),
    ) {
        let greedy = [
            Heuristic::IteratedGreedyEndGreedy,
            Heuristic::IteratedGreedyEndLocal,
            Heuristic::EndGreedyOnly,
        ][greedy_idx];
        let p = 2 * n as u32 + 2 * extra_pairs;
        assert_incremental_equals_reference(
            seed, n, p, mtbf_years, greedy, identical_sizes,
        )?;
    }
}
